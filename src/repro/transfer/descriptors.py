"""Payload descriptors for one-sided and collective transfers.

A descriptor says *what* a transfer op moves: a contiguous byte range,
a strided walk (``count`` blocks of ``block_bytes`` every
``stride_bytes`` — matrix columns, halo faces), or an arbitrary
vector of segment lengths (gather lists).

Descriptors exist so the cost model can distinguish NIs that walk a
segment list themselves (``ni.gather_scatter_offload``) from NIs whose
processor must pack the segments through a staging buffer first.  The
wire always carries ``nbytes`` contiguous payload either way — the
difference is who paid to make it contiguous, which is exactly the
paper's data-transfer question applied to non-contiguous payloads.

Descriptors are frozen and hashable so they can ride inside
:class:`~repro.experiments.parallel.Job` kwargs; :func:`as_descriptor`
also accepts JSON-friendly specs (an ``int`` for contiguous bytes, or
tagged tuples like ``("strided", 16, 64, 256)``) so sweep cells stay
picklable and cache keys stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple, Union


@dataclass(frozen=True)
class Descriptor:
    """Base class for transfer payload descriptors."""

    kind: ClassVar[str] = "abstract"

    @property
    def nbytes(self) -> int:
        """Total user bytes the descriptor covers."""
        raise NotImplementedError

    @property
    def segments(self) -> int:
        """Number of distinct contiguous segments."""
        raise NotImplementedError

    def spec(self) -> Union[int, Tuple]:
        """JSON-friendly round-trippable form (see :func:`as_descriptor`)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Contiguous(Descriptor):
    """One contiguous region of ``size`` bytes (no pack/unpack cost)."""

    size: int
    kind: ClassVar[str] = "contig"

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("contiguous size must be >= 0")

    @property
    def nbytes(self) -> int:
        return self.size

    @property
    def segments(self) -> int:
        return 1

    def spec(self) -> int:
        return self.size


@dataclass(frozen=True)
class Strided(Descriptor):
    """``count`` blocks of ``block_bytes``, one every ``stride_bytes``.

    The classic non-contiguous shape (column of a row-major matrix,
    face of a 3-D halo).  ``stride_bytes`` must be at least
    ``block_bytes`` (segments may not overlap).
    """

    count: int
    block_bytes: int
    stride_bytes: int
    kind: ClassVar[str] = "strided"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("strided count must be >= 1")
        if self.block_bytes < 1:
            raise ValueError("strided block_bytes must be >= 1")
        if self.stride_bytes < self.block_bytes:
            raise ValueError("stride_bytes must be >= block_bytes")

    @property
    def nbytes(self) -> int:
        return self.count * self.block_bytes

    @property
    def segments(self) -> int:
        return self.count

    def spec(self) -> Tuple:
        return ("strided", self.count, self.block_bytes, self.stride_bytes)


@dataclass(frozen=True)
class Vector(Descriptor):
    """An explicit list of segment lengths (irregular gather list)."""

    lengths: Tuple[int, ...]
    kind: ClassVar[str] = "vector"

    def __post_init__(self) -> None:
        lengths = tuple(self.lengths)
        object.__setattr__(self, "lengths", lengths)
        if not lengths:
            raise ValueError("vector needs at least one segment")
        if any(n < 1 for n in lengths):
            raise ValueError("vector segment lengths must be >= 1")

    @property
    def nbytes(self) -> int:
        return sum(self.lengths)

    @property
    def segments(self) -> int:
        return len(self.lengths)

    def spec(self) -> Tuple:
        return ("vector",) + self.lengths


#: Anything :func:`as_descriptor` accepts.
DescriptorSpec = Union[Descriptor, int, tuple, list]


def as_descriptor(spec: DescriptorSpec) -> Descriptor:
    """Coerce ``spec`` to a :class:`Descriptor`.

    - a :class:`Descriptor` passes through;
    - an ``int`` means ``Contiguous(spec)``;
    - a tagged tuple/list round-trips :meth:`Descriptor.spec`:
      ``("contig", n)``, ``("strided", count, block, stride)``,
      ``("vector", len0, len1, ...)``.
    """
    if isinstance(spec, Descriptor):
        return spec
    if isinstance(spec, bool):
        raise TypeError(f"not a payload descriptor: {spec!r}")
    if isinstance(spec, int):
        return Contiguous(spec)
    if isinstance(spec, (tuple, list)) and spec:
        tag = spec[0]
        if tag == "contig" and len(spec) == 2:
            return Contiguous(spec[1])
        if tag == "strided" and len(spec) == 4:
            return Strided(spec[1], spec[2], spec[3])
        if tag == "vector" and len(spec) >= 2:
            return Vector(tuple(spec[1:]))
    raise TypeError(f"not a payload descriptor: {spec!r}")
