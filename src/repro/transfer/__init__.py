"""Collectives and one-sided transfers as first-class scenarios.

This package layers a transfer-operation vocabulary on the Tempest
runtime and the seven NI models:

- :mod:`repro.transfer.descriptors` — what a transfer moves
  (:class:`Contiguous`, :class:`Strided`, :class:`Vector` payloads,
  with NI-side gather/scatter cost accounting);
- :mod:`repro.transfer.ops` — the op vocabulary (:class:`Barrier`,
  :class:`Broadcast`, :class:`Reduce`, :class:`Put`, :class:`Get`);
- :mod:`repro.transfer.engine` — the per-machine
  :class:`TransferEngine` that executes ops (binomial-tree
  collectives, eager/rendezvous one-sided protocols);
- :mod:`repro.transfer.registry` — ``register``/``get``/``create``/
  ``names``, the same idiom as the NI and workload registries.

The quickest way in is the facade::

    import repro.api as api
    result = api.run_collective("bcast", ni="cni512q", nodes=8,
                                payload=1024)
"""

from repro.transfer.descriptors import (
    Contiguous,
    Descriptor,
    Strided,
    Vector,
    as_descriptor,
)
from repro.transfer.engine import TransferEngine, tree_children, tree_parent
from repro.transfer.ops import (
    PROTOCOLS,
    Barrier,
    Broadcast,
    Get,
    Put,
    Reduce,
    TransferOp,
)
from repro.transfer.registry import create, get, names, register

__all__ = [
    "Contiguous",
    "Descriptor",
    "Strided",
    "Vector",
    "as_descriptor",
    "TransferEngine",
    "tree_parent",
    "tree_children",
    "PROTOCOLS",
    "TransferOp",
    "Barrier",
    "Broadcast",
    "Reduce",
    "Put",
    "Get",
    "register",
    "get",
    "create",
    "names",
]
