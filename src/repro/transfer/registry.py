"""Registry of transfer operations.

The surface mirrors :mod:`repro.ni.registry` and
:mod:`repro.workloads.registry` — ``register``/``get``/``create``/
``names`` — so callers learn one idiom for all three vocabularies.
The five canonical ops (barrier, bcast, reduce, put, get) are
pre-registered; experiments and user code may register more.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.transfer.ops import Barrier, Broadcast, Get, Put, Reduce, TransferOp

_REGISTRY: Dict[str, Type[TransferOp]] = {
    cls.op_name: cls for cls in (Barrier, Broadcast, Reduce, Put, Get)
}


def register(name: str, cls: Type[TransferOp]) -> None:
    """Register a transfer-op class under ``name`` (overwrites)."""
    _REGISTRY[name] = cls


def get(name: str) -> Type[TransferOp]:
    """The transfer-op class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown transfer op {name!r}; known: {known}"
        ) from None


def create(name: str, **kwargs) -> TransferOp:
    """Construct a transfer op by name with optional overrides."""
    return get(name)(**kwargs)


def names() -> Tuple[str, ...]:
    """Every registered transfer-op name, sorted."""
    return tuple(sorted(_REGISTRY))
