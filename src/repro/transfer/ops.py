"""The transfer-op vocabulary: collectives and one-sided transfers.

An op is a frozen, declarative description of one communication
pattern — *what* moves, between *whom*, under which protocol — that a
:class:`~repro.transfer.engine.TransferEngine` knows how to execute on
a machine.  Ops are hashable and round-trippable through JSON-friendly
specs (payloads coerce via
:func:`~repro.transfer.descriptors.as_descriptor`), so they ride
inside sweep jobs and cache keys unchanged.

Every op exposes the same three hooks the generic harness drives:

- :meth:`TransferOp.execute` — the per-node processor-context
  generator (every node calls it; ops with a single active side no-op
  on bystanders, who then service the network at the enclosing
  barrier);
- :meth:`TransferOp.moved_bytes` — logical user bytes delivered per
  op execution, for goodput;
- :meth:`TransferOp.describe` — a short human label for tables.

Register new ops with :func:`repro.transfer.registry.register`; the
five canonical ones below are pre-registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Generator

from repro.transfer.descriptors import DescriptorSpec, as_descriptor

#: Protocol choices for one-sided ops.
PROTOCOLS = ("auto", "eager", "rendezvous")


@dataclass(frozen=True)
class TransferOp:
    """Base class for transfer operations."""

    op_name: ClassVar[str] = "abstract"

    def execute(self, engine, node) -> Generator:
        """Run this node's share of the op (timed generator)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def moved_bytes(self, num_nodes: int) -> int:
        """Logical user bytes delivered per execution (goodput basis)."""
        return 0

    def describe(self) -> str:
        return self.op_name


def _coerce_payload(op, attr: str = "payload") -> None:
    object.__setattr__(op, attr, as_descriptor(getattr(op, attr)))


def _check_protocol(protocol: str) -> None:
    if protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from {PROTOCOLS}"
        )


@dataclass(frozen=True)
class Barrier(TransferOp):
    """Global synchronisation: no payload, pure control traffic."""

    op_name: ClassVar[str] = "barrier"

    def execute(self, engine, node) -> Generator:
        yield from engine.barrier(node)


@dataclass(frozen=True)
class Broadcast(TransferOp):
    """Root sends ``payload`` to every other node (binomial tree)."""

    payload: DescriptorSpec = 256
    root: int = 0
    op_name: ClassVar[str] = "bcast"

    def __post_init__(self) -> None:
        _coerce_payload(self)
        if self.root < 0:
            raise ValueError("broadcast root must be >= 0")

    def execute(self, engine, node) -> Generator:
        yield from engine.broadcast(node, self.root, self.payload)

    def moved_bytes(self, num_nodes: int) -> int:
        return (num_nodes - 1) * self.payload.nbytes

    def describe(self) -> str:
        return f"bcast({self.payload.nbytes}B)"


@dataclass(frozen=True)
class Reduce(TransferOp):
    """Every node contributes ``payload``; root combines (binomial tree)."""

    payload: DescriptorSpec = 256
    root: int = 0
    op_name: ClassVar[str] = "reduce"

    def __post_init__(self) -> None:
        _coerce_payload(self)
        if self.root < 0:
            raise ValueError("reduce root must be >= 0")

    def execute(self, engine, node) -> Generator:
        # Contribute this node's rank so the combined result is
        # end-to-end checkable (sum of 0..n-1).
        yield from engine.reduce(
            node, self.root, self.payload, value=node.node_id
        )

    def moved_bytes(self, num_nodes: int) -> int:
        return (num_nodes - 1) * self.payload.nbytes

    def describe(self) -> str:
        return f"reduce({self.payload.nbytes}B)"


@dataclass(frozen=True)
class Put(TransferOp):
    """One-sided write: ``origin`` deposits ``payload`` at ``target``."""

    payload: DescriptorSpec = 256
    origin: int = 0
    target: int = 1
    protocol: str = "auto"
    op_name: ClassVar[str] = "put"

    def __post_init__(self) -> None:
        _coerce_payload(self)
        _check_protocol(self.protocol)
        if self.origin == self.target:
            raise ValueError("put endpoints must differ")

    def execute(self, engine, node) -> Generator:
        if node.node_id == self.origin:
            yield from engine.put(
                node, self.target, self.payload, protocol=self.protocol
            )

    def moved_bytes(self, num_nodes: int) -> int:
        return self.payload.nbytes

    def describe(self) -> str:
        return f"put({self.payload.nbytes}B,{self.protocol})"


@dataclass(frozen=True)
class Get(TransferOp):
    """One-sided read: ``origin`` fetches ``payload`` from ``target``."""

    payload: DescriptorSpec = 256
    origin: int = 0
    target: int = 1
    protocol: str = "auto"
    op_name: ClassVar[str] = "get"

    def __post_init__(self) -> None:
        _coerce_payload(self)
        _check_protocol(self.protocol)
        if self.origin == self.target:
            raise ValueError("get endpoints must differ")

    def execute(self, engine, node) -> Generator:
        if node.node_id == self.origin:
            yield from engine.get(
                node, self.target, self.payload, protocol=self.protocol
            )

    def moved_bytes(self, num_nodes: int) -> int:
        return self.payload.nbytes

    def describe(self) -> str:
        return f"get({self.payload.nbytes}B,{self.protocol})"
