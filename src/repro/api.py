"""repro.api — the one-stop facade for library users.

The rest of the package is organised the way the simulator is built
(sim kernel, memory system, NIs, runtime, workloads, experiments).
This module is organised the way a *user* asks questions:

- what can I simulate? — :func:`list_nis`, :func:`list_workloads`;
- give me a machine — :func:`build_machine`;
- run this workload on that NI and show me everything —
  :func:`run_workload`, returning a :class:`RunResult` that bundles
  the workload's measurements with the machine's full metrics
  snapshot (``machine.obs``; see docs/observability.md).

Quickstart::

    from repro import api

    result = api.run_workload(ni="cni32qm", workload="pingpong",
                              payload_bytes=64, rounds=100)
    print(result.workload.extras["round_trip_us"])
    print(result.metrics["node0.ni.messages_sent"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.config import (
    DEFAULT_COSTS,
    DEFAULT_PARAMS,
    SoftwareCosts,
    SystemParams,
)
from repro.node import Machine
from repro.workloads.base import Workload, WorkloadResult

#: Workload names resolvable by :func:`run_workload` beyond the
#: macrobenchmark registry (the paper's two microbenchmarks).
MICRO_NAMES: Tuple[str, ...] = ("pingpong", "stream")


def list_nis() -> Tuple[str, ...]:
    """Registered NI names (the seven built-ins plus any variants)."""
    from repro.ni import registry

    return registry.names()


def list_workloads() -> Tuple[str, ...]:
    """Every workload name :func:`run_workload` accepts."""
    from repro.workloads import registry

    return MICRO_NAMES + registry.names()


def build_machine(
    *,
    ni: str = "cni32qm",
    num_nodes: Optional[int] = None,
    params: Optional[SystemParams] = None,
    costs: Optional[SoftwareCosts] = None,
) -> Machine:
    """A ready-to-run :class:`~repro.node.Machine`.

    Defaults follow the paper: Table 3 system parameters, Table 3
    software costs, 16 nodes, and the winning ``cni32qm`` NI.
    """
    return Machine(
        params or DEFAULT_PARAMS,
        costs or DEFAULT_COSTS,
        ni,
        num_nodes=num_nodes,
    )


def _resolve_workload(workload, **kwargs) -> Workload:
    """A :class:`Workload` instance from a name or an instance."""
    if isinstance(workload, Workload):
        if kwargs:
            raise ValueError(
                "workload kwargs only apply when constructing by name; "
                f"got an instance plus {sorted(kwargs)}"
            )
        return workload
    from repro.workloads.micro import PingPong, StreamBandwidth

    if workload == "pingpong":
        return PingPong(**kwargs)
    if workload == "stream":
        return StreamBandwidth(**kwargs)
    from repro.workloads import registry

    return registry.create(workload, **kwargs)


@dataclass
class RunResult:
    """One workload run, with the machine's observability attached."""

    #: The workload's own measurements (time, states, messages, extras).
    workload: WorkloadResult
    #: Flat ``{dotted.path: number}`` snapshot of every mounted metric.
    metrics: Dict[str, float]
    #: The machine the run used (inspect ``machine.obs`` for more).
    machine: Machine

    @property
    def elapsed_us(self) -> float:
        return self.workload.elapsed_us

    @property
    def spans(self):
        """Completed message lifecycle spans (``repro.obs.spans``).

        Empty unless the run was built with ``spans=True`` (or params
        with ``spans=True``); each span carries per-phase timing —
        feed them to :func:`repro.obs.export_perfetto` or
        :func:`repro.analysis.latency_report`.
        """
        return self.machine.spans.completed()

    def breakdown(self) -> Dict[str, float]:
        """Figure 1 fractions: compute / data_transfer / buffering."""
        return self.workload.breakdown()


def run_workload(
    *,
    ni: str = "cni32qm",
    workload: Any = "pingpong",
    num_nodes: Optional[int] = None,
    params: Optional[SystemParams] = None,
    costs: Optional[SoftwareCosts] = None,
    spans: bool = False,
    **workload_kwargs: Any,
) -> RunResult:
    """Build a machine, run ``workload`` on it, return everything.

    ``workload`` is a name from :func:`list_workloads` (constructor
    kwargs pass through, e.g. ``payload_bytes=256``) or a ready
    :class:`~repro.workloads.base.Workload` instance.  ``spans=True``
    records per-message lifecycle spans (``RunResult.spans``).
    """
    instance = _resolve_workload(workload, **workload_kwargs)
    if num_nodes is None:
        num_nodes = instance.num_nodes
    if spans:
        params = (params or DEFAULT_PARAMS).replace(spans=True)
    machine = build_machine(
        ni=ni, num_nodes=num_nodes, params=params, costs=costs,
    )
    result = instance.run(machine=machine)
    return RunResult(
        workload=result,
        metrics=machine.obs.snapshot(),
        machine=machine,
    )
