"""repro.api — the one-stop facade for library users.

The rest of the package is organised the way the simulator is built
(sim kernel, memory system, NIs, runtime, workloads, experiments).
This module is organised the way a *user* asks questions:

- what can I simulate? — :func:`list_nis`, :func:`list_workloads`,
  :func:`list_ops`;
- give me a machine — :func:`build_machine`;
- run this workload on that NI and show me everything —
  :func:`run_workload`, returning a :class:`RunResult` that bundles
  the workload's measurements with the machine's full metrics
  snapshot (``machine.obs``; see docs/observability.md);
- run a collective or one-sided transfer op (repro.transfer) —
  :func:`run_collective`, same :class:`RunResult`.

Anywhere a name string is accepted, a :class:`Spec` — a name plus
constructor overrides — is too: ``Spec("cni32qm", recv_queue_blocks=8)``
for an NI builds a registered variant; ``Spec("pingpong", rounds=50)``
for a workload carries its kwargs.

Quickstart::

    from repro import api

    result = api.run_workload(ni="cni32qm", workload="pingpong",
                              payload_bytes=64, rounds=100)
    print(result.workload.extras["round_trip_us"])
    print(result.metrics["node0.ni.messages_sent"])

    result = api.run_collective("bcast", ni="cni512q", nodes=8,
                                payload=1024)
    print(result.workload.extras["op_latency_us"])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.config import (
    DEFAULT_COSTS,
    DEFAULT_PARAMS,
    SoftwareCosts,
    SystemParams,
)
from repro.node import Machine
from repro.workloads.base import Workload, WorkloadResult

#: Workload names resolvable by :func:`run_workload` beyond the
#: macrobenchmark registry (the paper's two microbenchmarks).
MICRO_NAMES: Tuple[str, ...] = ("pingpong", "stream")

__all__ = [
    "MICRO_NAMES",
    "RunResult",
    "Spec",
    "build_machine",
    "list_nis",
    "list_ops",
    "list_workloads",
    "replay",
    "run_collective",
    "run_sharded",
    "run_workload",
    "submit_sweep",
    "sweep_result",
    "sweep_status",
]


class Spec:
    """A registry name plus constructor overrides.

    Accepted anywhere the facade takes a name string:

    - as an NI — :func:`build_machine` / :func:`run_workload` register
      a :func:`~repro.ni.registry.variant` with the given class-attr
      overrides (``Spec("cni32qm", recv_queue_blocks=8)``);
    - as a workload — :func:`run_workload` passes the kwargs to the
      workload constructor (``Spec("stream", payload_bytes=4096)``);
    - as a transfer op — :func:`run_collective` passes the kwargs to
      the op constructor (``Spec("put", payload=4096,
      protocol="rendezvous")``).
    """

    __slots__ = ("name", "kwargs")

    def __init__(self, name: str, **kwargs: Any):
        self.name = name
        self.kwargs = kwargs

    def __repr__(self) -> str:
        inner = ", ".join(
            [repr(self.name)]
            + [f"{k}={v!r}" for k, v in sorted(self.kwargs.items())]
        )
        return f"Spec({inner})"

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Spec) and self.name == other.name
                and self.kwargs == other.kwargs)

    def __hash__(self) -> int:
        return hash((self.name, tuple(sorted(self.kwargs.items()))))


def list_nis() -> Tuple[str, ...]:
    """Registered NI names (the seven built-ins plus any variants)."""
    from repro.ni import registry

    return registry.names()


def list_workloads() -> Tuple[str, ...]:
    """Every workload name :func:`run_workload` accepts."""
    from repro.workloads import registry

    return MICRO_NAMES + registry.names()


def list_ops() -> Tuple[str, ...]:
    """Every transfer-op name :func:`run_collective` accepts."""
    from repro.transfer import registry

    return registry.names()


def _resolve_ni(ni) -> str:
    """A registered NI name from a name string or a :class:`Spec`."""
    if isinstance(ni, Spec):
        from repro.ni import registry

        if not ni.kwargs:
            return ni.name
        suffix = "-".join(
            f"{key}={value}" for key, value in sorted(ni.kwargs.items())
        )
        return registry.variant(ni.name, suffix, **ni.kwargs)
    return ni


def build_machine(
    *,
    ni: Any = "cni32qm",
    num_nodes: Optional[int] = None,
    params: Optional[SystemParams] = None,
    costs: Optional[SoftwareCosts] = None,
) -> Machine:
    """A ready-to-run :class:`~repro.node.Machine`.

    Defaults follow the paper: Table 3 system parameters, Table 3
    software costs, 16 nodes, and the winning ``cni32qm`` NI.  ``ni``
    is a registered name or a :class:`Spec` whose kwargs become a
    registered variant's class-attr overrides.
    """
    return Machine(
        params or DEFAULT_PARAMS,
        costs or DEFAULT_COSTS,
        _resolve_ni(ni),
        num_nodes=num_nodes,
    )


def _resolve_workload(workload, **kwargs) -> Workload:
    """A :class:`Workload` instance from a name, :class:`Spec`, or
    instance."""
    if isinstance(workload, Workload):
        if kwargs:
            raise ValueError(
                "workload kwargs only apply when constructing by name; "
                f"got an instance plus {sorted(kwargs)}"
            )
        return workload
    if isinstance(workload, Spec):
        overlap = set(workload.kwargs) & set(kwargs)
        if overlap:
            raise ValueError(
                f"workload kwargs given twice: {sorted(overlap)}"
            )
        merged = {**workload.kwargs, **kwargs}
        return _resolve_workload(workload.name, **merged)
    from repro.workloads.micro import PingPong, StreamBandwidth

    if workload == "pingpong":
        return PingPong(**kwargs)
    if workload == "stream":
        return StreamBandwidth(**kwargs)
    from repro.workloads import registry

    return registry.create(workload, **kwargs)


@dataclass
class RunResult:
    """One workload run, with the machine's observability attached."""

    #: The workload's own measurements (time, states, messages, extras).
    workload: WorkloadResult
    #: Flat ``{dotted.path: number}`` snapshot of every mounted metric.
    metrics: Dict[str, float]
    #: The machine the run used (inspect ``machine.obs`` for more).
    machine: Machine

    @property
    def elapsed_us(self) -> float:
        return self.workload.elapsed_us

    @property
    def spans(self):
        """Completed message lifecycle spans (``repro.obs.spans``).

        Empty unless the run was built with ``spans=True`` (or params
        with ``spans=True``); each span carries per-phase timing —
        feed them to :func:`repro.obs.export_perfetto` or
        :func:`repro.analysis.latency_report`.
        """
        return self.machine.spans.completed()

    def breakdown(self) -> Dict[str, float]:
        """Figure 1 fractions: compute / data_transfer / buffering."""
        return self.workload.breakdown()


def run_workload(
    *,
    ni: str = "cni32qm",
    workload: Any = "pingpong",
    num_nodes: Optional[int] = None,
    params: Optional[SystemParams] = None,
    costs: Optional[SoftwareCosts] = None,
    spans: bool = False,
    **workload_kwargs: Any,
) -> RunResult:
    """Build a machine, run ``workload`` on it, return everything.

    ``workload`` is a name from :func:`list_workloads` (constructor
    kwargs pass through, e.g. ``payload_bytes=256``) or a ready
    :class:`~repro.workloads.base.Workload` instance.  ``spans=True``
    records per-message lifecycle spans (``RunResult.spans``).
    """
    instance = _resolve_workload(workload, **workload_kwargs)
    if num_nodes is None:
        num_nodes = instance.num_nodes
    if spans:
        params = (params or DEFAULT_PARAMS).replace(spans=True)
    machine = build_machine(
        ni=ni, num_nodes=num_nodes, params=params, costs=costs,
    )
    result = instance.run(machine=machine)
    return RunResult(
        workload=result,
        metrics=machine.obs.snapshot(),
        machine=machine,
    )


def run_collective(
    op: Any = "barrier",
    *,
    ni: Any = "cni32qm",
    nodes: int = 8,
    rounds: Optional[int] = None,
    params: Optional[SystemParams] = None,
    costs: Optional[SoftwareCosts] = None,
    spans: bool = False,
    **op_kwargs: Any,
) -> RunResult:
    """Run one transfer op for ``rounds`` rounds on ``nodes`` nodes.

    ``op`` is a name from :func:`list_ops` (constructor kwargs pass
    through, e.g. ``payload=4096, protocol="rendezvous"``), a
    :class:`Spec`, or a ready
    :class:`~repro.transfer.ops.TransferOp` instance.  Returns the
    same :class:`RunResult` as :func:`run_workload`; per-op latency
    and goodput land in ``result.workload.extras``.
    """
    from repro.transfer.ops import TransferOp
    from repro.workloads.collectives import OpRun

    if isinstance(op, Spec):
        overlap = set(op.kwargs) & set(op_kwargs)
        if overlap:
            raise ValueError(f"op kwargs given twice: {sorted(overlap)}")
        op_kwargs = {**op.kwargs, **op_kwargs}
        op = op.name
    if isinstance(op, str):
        from repro.transfer import registry

        op = registry.create(op, **op_kwargs)
    elif op_kwargs:
        raise ValueError(
            "op kwargs only apply when constructing by name; "
            f"got an instance plus {sorted(op_kwargs)}"
        )
    if not isinstance(op, TransferOp):
        raise TypeError(f"not a transfer op: {op!r}")
    return run_workload(
        ni=ni, workload=OpRun(op, nodes=nodes, rounds=rounds),
        num_nodes=nodes, params=params, costs=costs, spans=spans,
    )


def run_sharded(
    *,
    ni: str = "cni32qm",
    workload: Any = "halo",
    num_nodes: int = 64,
    shards: int = 4,
    partition: str = "stride",
    topology: Optional[str] = None,
    params: Optional[SystemParams] = None,
    costs: Optional[SoftwareCosts] = None,
    collect_digest: bool = False,
    transport: Optional[str] = None,
    **workload_kwargs: Any,
):
    """Run one machine split across ``shards`` worker processes.

    The sharded runner (see :mod:`repro.shard` and "Sharded
    execution" in docs/architecture.md) partitions the nodes across
    shards and synchronizes them with conservative time windows;
    results are bit-identical to a 1-shard run.  ``workload`` must be
    a *shardable* registry name or :class:`Spec` (nodes interact only
    through the network); ``topology`` optionally selects a concrete
    fabric (``"mesh"``/``"torus"``).  Ordered delivery is forced on —
    results match a 1-shard ordered run, not the unordered default
    path.  Returns a :class:`~repro.shard.ShardResult`;
    ``collect_digest=True`` fills its digest fields.
    """
    from repro.shard import ShardJob
    from repro.shard import run_sharded as _run_sharded

    if isinstance(workload, Spec):
        overlap = set(workload.kwargs) & set(workload_kwargs)
        if overlap:
            raise ValueError(
                f"workload kwargs given twice: {sorted(overlap)}"
            )
        workload_kwargs = {**workload.kwargs, **workload_kwargs}
        workload = workload.name
    base = params or DEFAULT_PARAMS
    job = ShardJob(
        workload=workload,
        ni=ni,
        params=base.replace(ordered_delivery=True,
                            network_topology=topology),
        costs=costs or DEFAULT_COSTS,
        num_nodes=num_nodes,
        num_shards=shards,
        partition=partition,
        kwargs=tuple(sorted(workload_kwargs.items())),
        collect_digest=collect_digest,
    )
    return _run_sharded(job, transport=transport)


def replay(capture, *, strict: bool = True):
    """Re-execute a captured run and verify it reproduces bit-exactly.

    ``capture`` is an ``.rprc`` file path (written by the experiment
    runner's ``--capture`` or :func:`repro.replay.write_capture`) or a
    payload dict.  Returns a :class:`repro.replay.ReplayReport`; with
    ``strict`` (the default) a divergence raises
    :class:`repro.replay.ReplayMismatch` whose report names the
    diverging digest and every metric leaf that moved.  See
    docs/replay.md.
    """
    from repro.replay import replay as _replay

    return _replay(capture, strict=strict)


def _service_client(service):
    """A :class:`repro.service.client.ServiceClient` from a service
    root directory, a server URL, or an existing client."""
    from repro.service.client import ServiceClient

    if isinstance(service, ServiceClient):
        return service
    if isinstance(service, str) and service.startswith("http"):
        return ServiceClient(service)
    return ServiceClient.from_dir(service)


def submit_sweep(
    service,
    sweep: str,
    jobs,
    *,
    tenant: str = "default",
    weight: int = 1,
    wait: bool = False,
    timeout_s: float = 600.0,
):
    """Submit a sweep of jobs to a running job server.

    ``service`` is a service root directory (holding ``server.json``),
    a server URL, or a :class:`~repro.service.client.ServiceClient`;
    ``jobs`` is an iterable of
    :class:`~repro.experiments.parallel.Job` (or pre-encoded
    ``{label, spec}`` dicts).  Submission is idempotent on the sweep
    id: resubmitting a known sweep is acknowledged without duplicating
    cells.  With ``wait`` the call blocks until the sweep settles and
    returns its final status; otherwise it returns the submission
    acknowledgement.  Start a server with ``repro-experiments serve``;
    see docs/service.md.
    """
    client = _service_client(service)
    response = client.submit(sweep, jobs, tenant=tenant, weight=weight)
    if not wait:
        return response
    return client.wait(sweep, timeout_s=timeout_s)


def sweep_status(service, sweep: Optional[str] = None):
    """Queue state of one sweep (or the whole server when ``sweep`` is
    None): pending/done/quarantined counts, finished/clean flags."""
    return _service_client(service).status(sweep)


def sweep_result(service, sweep: str):
    """Final per-cell states of a sweep plus the paths that matter:
    the per-sweep ``manifest-<sweep>.json`` and the shared result
    cache directory the completed cells live in."""
    return _service_client(service).result(sweep)
