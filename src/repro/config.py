"""System configuration.

:class:`SystemParams` carries the hardware parameters of Table 3 of the
paper; :class:`SoftwareCosts` carries the messaging-layer costs that the
paper inherits from running real binaries on Wisconsin Wind Tunnel II
and that we model as calibrated per-primitive constants (see DESIGN.md,
substitution 3).

All times are integer nanoseconds.  With a 1 GHz processor one cycle is
1 ns, so "cycles" and "ns" coincide for processor-side costs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.faults.config import FaultConfig


@dataclass(frozen=True)
class SystemParams:
    """Hardware parameters (defaults reproduce Table 3 of the paper)."""

    #: Number of parallel machine nodes.
    num_nodes: int = 16
    #: Processor clock, GHz.  1 GHz => 1 ns cycle.
    proc_clock_ghz: float = 1.0
    #: Cache block size, bytes.
    cache_block_bytes: int = 64
    #: Processor cache size, bytes (one megabyte).
    cache_bytes: int = 1 << 20
    #: Cache associativity (direct-mapped).
    cache_associativity: int = 1
    #: Main memory access time, ns.
    mem_access_ns: int = 120
    #: Memory bus width, bits (256 bits = 32 bytes per data cycle).
    bus_width_bits: int = 256
    #: Memory bus clock, MHz (250 MHz => 4 ns bus cycle).
    bus_clock_mhz: int = 250
    #: Maximum network message size, bytes (header + payload).
    network_message_bytes: int = 256
    #: Network latency, ns: last byte injected to first byte delivered.
    network_latency_ns: int = 40
    #: NI memory access time, ns.  CNI_512Q overrides this to
    #: ``mem_access_ns`` because its 512-block queues imply DRAM.
    ni_mem_access_ns: int = 60
    #: Flow-control buffers per direction per NI (Section 5.1.2).
    #: ``None`` models the paper's "infinite" configuration.
    flow_control_buffers: Optional[int] = 8
    #: Message header size, bytes ("each message contains an
    #: eight-byte header", Table 5 caption).
    header_bytes: int = 8
    #: Model DRAM bank occupancy (reads and posted writes contend for
    #: the memory array).  Off by default — the paper's bus model does
    #: not include it — but the banking ablation shows it recovers
    #: CNI_512Q's bandwidth advantage over the StarT-JR-like NI.
    memory_banking: bool = False
    #: Network topology: ``None`` (the paper's abstract constant-latency
    #: network), "mesh" (2D mesh with link contention — extension; see
    #: repro.network.topology), or "torus" (the mesh with wraparound
    #: links and shortest-direction dimension-order routing).
    network_topology: Optional[str] = None
    #: Canonical arrival ordering (repro.shard): every message bound
    #: for a node at tick T — data and control alike — is parked in a
    #: per-tick inbox and delivered by an end-of-tick flush, node by
    #: node in ascending id, sorted by ``(send_time, src, src_seq)``
    #: within a node.  This makes the per-node delivery streams a pure
    #: function of the model (independent of kernel event interleaving
    #: across nodes), which is what lets a sharded run reproduce the
    #: single-process reference bit-for-bit.  Off by default — the
    #: normal path is byte-identical to previous releases.  Requires
    #: the heap scheduler; incompatible with fault injection (the
    #: injector's RNG is consumed in global event order).  Mesh/torus
    #: data messages use the fabric's contention-free static latency
    #: (hops x hop_ns + serialization) in this mode, since shared link
    #: queues are cross-node state a partition cannot reproduce.
    ordered_delivery: bool = False
    #: Record a machine-wide event trace (message life cycles) —
    #: see repro.tools.timeline.  Off by default: tracing costs time
    #: and memory.
    tracing: bool = False
    #: Record per-message lifecycle spans (phase-attributed latency) —
    #: see repro.obs.spans.  Off by default, same discipline as
    #: ``tracing``: the disabled path is one attribute check.
    spans: bool = False
    #: Bus coherence protocol: "MOESI" (Table 3) or "MESI" (ablation).
    #: Without the Owned state, a dirty block snooped by a read is
    #: flushed to memory and the reader fetches it from there — no
    #: cache-to-cache supply, which is exactly the transfer every
    #: coherent NI depends on.
    coherence_protocol: str = "MOESI"
    #: Event-queue scheduler: "heap" (binary heap, the reference
    #: implementation) or "wheel" (hierarchical timing wheel).  Both
    #: produce bit-identical runs; see docs/architecture.md (Kernel v2).
    sim_scheduler: str = "heap"
    #: Fault injection and reliable delivery (see repro.faults and
    #: docs/robustness.md).  ``None`` (the default) means the lossless
    #: fabric of the paper with every fault hook structurally absent —
    #: results are byte-identical to builds without the subsystem.
    faults: Optional["FaultConfig"] = None
    #: Flight recorder: capacity of the bounded ring buffer that keeps
    #: the *last N* trace records (and span completions) for post-mortem
    #: dumps — see repro.obs.flight.  0 (the default) disables it; the
    #: disabled path is the same one-flag check as ``tracing``.  Unlike
    #: ``tracing`` the ring never grows, so it is safe to leave on for
    #: long chaos runs.
    flight_recorder: int = 0
    #: Timeline telemetry: snapshot the metrics registry every this many
    #: simulated ns into a columnar series — see repro.obs.timeline.
    #: 0 (the default) disables it.  Sampling is piggybacked on the
    #: kernel schedule hook and never schedules events, so the event
    #: schedule (and every ScheduleDigest) is unchanged by turning it
    #: on.
    timeline_ns: int = 0
    #: Optional dotted-path prefixes restricting which metric paths the
    #: timeline records (``("net.", "node0.ni.")``).  ``None`` records
    #: every mounted path.
    timeline_paths: Optional[tuple] = None
    #: One-sided transfer protocol switchover (repro.transfer): puts and
    #: gets with payloads of at least this many bytes use the rendezvous
    #: protocol (RTS/CTS handshake before the data stream); smaller
    #: transfers go eager.  The MPICH2-over-InfiniBand convention: eager
    #: saves a round trip, rendezvous saves the target from buffering
    #: unexpected bulk data.
    rendezvous_threshold: int = 1024

    # -- derived ------------------------------------------------------

    @property
    def cycle_ns(self) -> int:
        """Processor cycle time in ns (>= 1)."""
        return max(1, round(1.0 / self.proc_clock_ghz))

    @property
    def bus_cycle_ns(self) -> int:
        """Bus cycle time in ns."""
        return max(1, round(1000.0 / self.bus_clock_mhz))

    @property
    def bus_width_bytes(self) -> int:
        return self.bus_width_bits // 8

    @property
    def cache_sets(self) -> int:
        return self.cache_bytes // (
            self.cache_block_bytes * self.cache_associativity
        )

    @property
    def max_payload_bytes(self) -> int:
        """Largest payload a single network message can carry."""
        return self.network_message_bytes - self.header_bytes

    def data_cycles(self, nbytes: int) -> int:
        """Bus data cycles needed to move ``nbytes``."""
        width = self.bus_width_bytes
        return max(1, -(-nbytes // width))

    def blocks_for(self, nbytes: int) -> int:
        """Cache blocks needed to hold ``nbytes``."""
        return max(1, -(-nbytes // self.cache_block_bytes))

    def replace(self, **changes) -> "SystemParams":
        """A copy with some fields changed (frozen-dataclass helper)."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent parameters."""
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.cache_block_bytes & (self.cache_block_bytes - 1):
            raise ValueError("cache_block_bytes must be a power of two")
        if self.cache_bytes % self.cache_block_bytes:
            raise ValueError("cache_bytes must be a multiple of the block size")
        if self.bus_width_bits % 8:
            raise ValueError("bus_width_bits must be a multiple of 8")
        if self.header_bytes >= self.network_message_bytes:
            raise ValueError("header must be smaller than a network message")
        if self.flow_control_buffers is not None and self.flow_control_buffers < 1:
            raise ValueError("flow_control_buffers must be >= 1 or None")
        if self.network_topology not in (None, "mesh", "torus"):
            raise ValueError(
                f"unknown network_topology {self.network_topology!r}"
            )
        if self.network_latency_ns < 1:
            raise ValueError("network_latency_ns must be >= 1")
        if self.ordered_delivery:
            if self.sim_scheduler != "heap":
                raise ValueError(
                    "ordered_delivery requires the heap scheduler (the "
                    "end-of-tick flush hook is a heap-loop feature)"
                )
            if self.faults is not None:
                raise ValueError(
                    "ordered_delivery is incompatible with fault "
                    "injection: the injector draws from one RNG in "
                    "global event order, which a node-partitioned run "
                    "cannot reproduce"
                )
        if self.coherence_protocol not in ("MOESI", "MESI"):
            raise ValueError(
                f"unknown coherence_protocol {self.coherence_protocol!r}"
            )
        if self.sim_scheduler not in ("heap", "wheel"):
            raise ValueError(f"unknown sim_scheduler {self.sim_scheduler!r}")
        if self.rendezvous_threshold < 1:
            raise ValueError("rendezvous_threshold must be >= 1")
        if self.flight_recorder < 0:
            raise ValueError("flight_recorder must be >= 0 (ring capacity)")
        if self.timeline_ns < 0:
            raise ValueError("timeline_ns must be >= 0 (sample interval)")
        if self.timeline_paths is not None:
            if self.timeline_ns == 0:
                raise ValueError(
                    "timeline_paths without timeline_ns has no effect; "
                    "set a sampling interval"
                )
            if not all(isinstance(p, str) for p in self.timeline_paths):
                raise ValueError("timeline_paths must be path-prefix strings")
        if self.faults is not None:
            self.faults.validate()
            if self.network_topology is not None:
                raise ValueError(
                    "fault injection requires the abstract constant-latency "
                    "network (network_topology=None); the mesh fabric has "
                    "no fault hooks"
                )


@dataclass(frozen=True)
class SoftwareCosts:
    """Messaging-layer software costs, in processor cycles (= ns at 1 GHz).

    These stand in for the instruction streams the paper executed on its
    simulated HyperSPARC.  Costs that the paper states explicitly are
    marked; the rest are calibrated so the microbenchmark magnitudes land
    in the paper's ballpark while the mechanistic parts of the model
    (bus, caches, queues, flow control) determine the relative shapes.
    """

    #: Fixed software cost to compose and commit a send (argument
    #: marshalling, header construction) before any NI interaction.
    send_setup: int = 150
    #: Fixed software cost to dispatch a received message to its active
    #: message handler (tag decode, handler call).
    receive_dispatch: int = 200
    #: Cost of one poll check that finds nothing (branch + status test,
    #: excluding the NI status access itself, which is NI-specific).
    poll_loop: int = 6
    #: Per-8-byte-word cost of a cached copy loop (load + store + index).
    copy_word: int = 2
    #: Block-buffer flush/load overhead: "12 processor cycles" (paper,
    #: Section 6.1.1, AP3000-like NI).
    blkbuf_flush: int = 12
    #: UDMA initiation: one uncached store + one uncached load is timed
    #: by the bus model; this is the extra instruction overhead around
    #: them (address arithmetic, protection word construction) plus
    #: switching bus mastership from processor to NI.  Calibrated so
    #: the UDMA-vs-uncached round-trip breakeven lands near the
    #: paper's ~96-byte payload.
    udma_setup: int = 480
    #: Payload size (bytes) above which the UDMA-based NI uses UDMA and
    #: below which it falls back on uncached accesses ("only for
    #: messages with payload greater than 96 bytes").
    udma_threshold: int = 96
    #: Backoff before re-injecting a message that was returned to the
    #: sender (return-to-sender flow control).  Too small and bounced
    #: messages hammer the still-full receiver; the value approximates
    #: the receiver's per-message drain time.
    retry_backoff: int = 600
    #: Per-segment software overhead of packing/unpacking a
    #: non-contiguous payload through a staging buffer (address
    #: arithmetic, loop control) on top of the per-word copy cost.
    #: Host-staged NIs pay this per strided/vector segment; NIs with
    #: gather/scatter offload walk the descriptor themselves at NI
    #: memory speed instead (see repro.transfer.descriptors).
    pack_segment: int = 60
    #: Processor cost to hand a collective/RMA control message to an NI
    #: that sources it from its queue region (one posted doorbell store
    #: plus descriptor word), replacing ``send_setup`` when the NI
    #: advertises ``collective_offload``.
    offload_doorbell: int = 40
    #: Per-8-byte-word cost of combining two reduction operands
    #: (load + op + store).
    combine_word: int = 3

    def replace(self, **changes) -> "SoftwareCosts":
        return dataclasses.replace(self, **changes)


#: The paper's configuration (Table 3 plus calibrated software costs).
DEFAULT_PARAMS = SystemParams()
DEFAULT_COSTS = SoftwareCosts()
