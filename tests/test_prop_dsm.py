"""Property-based tests for the software DSM protocol.

Random schedules of reads and writes from multiple nodes must always
complete (no protocol deadlock), leave the directory consistent with
the nodes' local states, and never leave two nodes dirty on one block.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.node import Machine
from repro.tempest import SharedMemory

#: One op: (node 0-2, read/write, home 0-2, block 0-1).
op_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=1),
)


def run_schedule(ops):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=3)
    sm = SharedMemory(machine, block_payload_bytes=24, name="p")
    per_node = {i: [] for i in range(3)}
    for node_id, op, home, block in ops:
        per_node[node_id].append((op, home, block))
    finished = [0]

    def program(node, my_ops):
        for op, home, block in my_ops:
            if op == "read":
                yield from sm.read(node, home, block)
            else:
                yield from sm.write(node, home, block)
        finished[0] += 1
        # Stay alive servicing the protocol until everyone is done.
        yield from node.runtime.wait_for(lambda: finished[0] >= 3)

    procs = [
        machine.sim.process(program(machine.node(i), per_node[i]))
        for i in range(3)
    ]
    machine.sim.run(until=machine.sim.all_of(procs))
    return machine, sm


@given(st.lists(op_strategy, min_size=1, max_size=24))
@settings(max_examples=25, deadline=None)
def test_dsm_schedules_always_complete(ops):
    machine, sm = run_schedule(ops)
    # All operations completed (the all_of above would have hung
    # otherwise); every blocking op got its grant.
    assert sm.counters["read_misses"] == sm.counters["data_replies"] or True


@given(st.lists(op_strategy, min_size=1, max_size=24))
@settings(max_examples=25, deadline=None)
def test_dsm_single_writer_at_quiescence(ops):
    machine, sm = run_schedule(ops)
    for home in range(3):
        for block in range(2):
            key = (home, block)
            dirty_holders = [
                n for n in range(3) if sm.is_dirty(n, key)
            ]
            assert len(dirty_holders) <= 1, (key, dirty_holders)


@given(st.lists(op_strategy, min_size=1, max_size=24))
@settings(max_examples=25, deadline=None)
def test_dsm_directory_matches_local_dirty_state(ops):
    machine, sm = run_schedule(ops)
    for home in range(3):
        for block, entry in sm._directory[home].items():
            key = (home, block)
            if entry.owner is not None and entry.owner != home:
                # If the directory names a remote owner, nobody else
                # may be dirty on the block.
                for n in range(3):
                    if n != entry.owner:
                        assert not sm.is_dirty(n, key)
            # No getx left stranded in a queue.
            assert entry.writers == [], (key, entry.writers)
