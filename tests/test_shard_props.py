"""Property-based tests for sharded-run determinism.

The contract under test: for *any* small halo configuration, shard
count, and partition strategy, the merged model digest of a sharded
run equals the single-process (1-shard) reference — sharding is a
wall-clock optimization, never a behavioural knob.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.shard import ShardJob, run_sharded


def _digest(num_nodes, shards, partition, iterations, compute_ns):
    params = DEFAULT_PARAMS.replace(
        ordered_delivery=True, flow_control_buffers=4,
    )
    job = ShardJob(
        workload="halo", ni="cni32qm",
        params=params, costs=DEFAULT_COSTS,
        num_nodes=num_nodes, num_shards=shards, partition=partition,
        kwargs=(("compute_ns", compute_ns),
                ("iterations", iterations),
                ("payload_bytes", 16)),
        collect_digest=True,
    )
    return run_sharded(job, transport="inline").model_digest


@given(
    st.integers(min_value=4, max_value=16),
    st.sampled_from([2, 4]),
    st.sampled_from(["block", "stride"]),
    st.integers(min_value=1, max_value=3),
    st.sampled_from([0, 700, 2000]),
)
@settings(max_examples=20, deadline=None)
def test_shard_count_never_changes_the_digest(
    num_nodes, shards, partition, iterations, compute_ns
):
    shards = min(shards, num_nodes)
    reference = _digest(num_nodes, 1, "block", iterations, compute_ns)
    sharded = _digest(num_nodes, shards, partition, iterations,
                      compute_ns)
    assert sharded == reference
