"""Unit tests for return-to-sender flow control."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.network import FlowControlUnit, Message, Network
from repro.sim import Simulator


def make_pair(fcb=2):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
    sim = Simulator()
    net = Network(sim, params)
    a = FlowControlUnit(sim, net, 0, params, DEFAULT_COSTS)
    b = FlowControlUnit(sim, net, 1, params, DEFAULT_COSTS)
    return sim, net, a, b


def test_basic_delivery_and_ack_frees_sender_buffer():
    sim, _, a, b = make_pair(fcb=2)
    msg = Message(src=0, dst=1, size=64)

    def sender():
        yield from a.send(msg)

    sim.process(sender())
    sim.run()
    assert b.inbound.items == (msg,)
    assert b.counters["accepted"] == 1
    # Ack came back 40 + 40 ns later and released the send buffer.
    assert a.send_buffers_in_use == 0
    assert a.counters["acked"] == 1


def test_receive_buffer_held_until_released():
    sim, _, a, b = make_pair(fcb=1)

    def sender():
        yield from a.send(Message(src=0, dst=1, size=64))

    sim.process(sender())
    sim.run()
    assert b.recv_buffers.in_use == 1
    b.release_receive_buffer()
    assert b.recv_buffers.in_use == 0


def test_overflow_bounces_and_retries_until_accepted():
    sim, _, a, b = make_pair(fcb=1)
    sent = [Message(src=0, dst=1, size=64), Message(src=0, dst=1, size=64)]

    def sender():
        for msg in sent:
            yield from a.send(msg)

    def consumer():
        # Drain the first message late, so the second bounces meanwhile.
        first = yield b.inbound.get()
        yield sim.timeout(2000)
        b.release_receive_buffer()
        second = yield b.inbound.get()
        b.release_receive_buffer()
        return (first, second)

    sim.process(sender())
    consumed = sim.process(consumer())
    sim.run()
    assert b.counters["returned"] >= 1          # at least one bounce
    assert a.counters["retried"] == b.counters["returned"]
    assert {m.uid for m in consumed.value} == {m.uid for m in sent}  # nothing lost
    assert sent[1].bounces >= 1


def test_sender_blocks_when_out_of_send_buffers():
    sim, _, a, b = make_pair(fcb=1)
    block_times = []

    def sender():
        for _ in range(2):
            blocked = yield from a.send(Message(src=0, dst=1, size=64))
            block_times.append(blocked)

    def consumer():
        msg = yield b.inbound.get()
        b.release_receive_buffer()
        msg = yield b.inbound.get()
        b.release_receive_buffer()

    sim.process(sender())
    sim.process(consumer())
    sim.run()
    assert block_times[0] == 0
    # Second send had to wait for the first ack (>= 80 ns round trip).
    assert block_times[1] >= 80
    assert a.counters["send_block_ns"] == block_times[1]


def test_infinite_buffers_never_block_or_bounce():
    sim, _, a, b = make_pair(fcb=None)

    def sender():
        for _ in range(50):
            blocked = yield from a.send(Message(src=0, dst=1, size=64))
            assert blocked == 0

    sim.process(sender())
    sim.run()
    assert b.counters["returned"] == 0
    assert len(b.inbound) == 50


def test_no_message_lost_under_heavy_overflow():
    sim, _, a, b = make_pair(fcb=1)
    total = 20
    received = []

    def sender():
        for i in range(total):
            yield from a.send(Message(src=0, dst=1, size=64, body=i))

    def consumer():
        while len(received) < total:
            msg = yield b.inbound.get()
            yield sim.timeout(500)           # slow consumer forces bounces
            received.append(msg.body)
            b.release_receive_buffer()

    sim.process(sender())
    sim.process(consumer())
    sim.run()
    assert sorted(received) == list(range(total))
    assert b.counters["returned"] > 0        # the scheme was exercised


def test_try_acquire_send_buffer():
    sim, _, a, _ = make_pair(fcb=1)
    assert a.try_acquire_send_buffer()
    assert not a.try_acquire_send_buffer()


def test_bounce_count_property():
    sim, _, a, b = make_pair(fcb=1)
    assert b.bounce_count == 0
