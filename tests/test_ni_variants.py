"""Tests for the NI variant registry used by ablations."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.ni.registry import ni_class, register, variant


def test_variant_registers_subclass_with_overrides():
    name = variant("cni32qm", "testnoopt", use_optimizations=False)
    assert name == "cni32qm@testnoopt"
    cls = ni_class(name)
    assert cls.use_optimizations is False
    assert cls.ni_name == "cni32qm"   # label preserved for counters
    base = ni_class("cni32qm")
    assert issubclass(cls, base)
    assert base.use_optimizations is True   # base untouched


def test_variant_is_constructible_on_a_machine():
    name = variant("cni32qm", "testdrop", drop_dead_blocks=False)
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, name, num_nodes=2)
    assert machine.node(0).ni.drop_dead_blocks is False


def test_variant_reregistration_overwrites():
    variant("cm5", "x")
    variant("cm5", "x")   # no error
    assert ni_class("cm5@x") is not None


def test_register_direct():
    cls = ni_class("cm5")
    register("my-cm5", cls)
    assert ni_class("my-cm5") is cls


def test_register_variant_alias_removed():
    import repro.ni.registry as registry

    assert not hasattr(registry, "register_variant")
