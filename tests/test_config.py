"""Unit tests for system parameters (Table 3) and software costs."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS, SoftwareCosts, SystemParams


def test_defaults_match_table3():
    p = DEFAULT_PARAMS
    assert p.num_nodes == 16
    assert p.proc_clock_ghz == 1.0
    assert p.cache_block_bytes == 64
    assert p.cache_bytes == 1 << 20
    assert p.cache_associativity == 1          # direct-mapped
    assert p.mem_access_ns == 120
    assert p.bus_width_bits == 256
    assert p.bus_clock_mhz == 250
    assert p.network_message_bytes == 256
    assert p.network_latency_ns == 40
    assert p.ni_mem_access_ns == 60
    assert p.flow_control_buffers == 8


def test_derived_cycle_times():
    p = DEFAULT_PARAMS
    assert p.cycle_ns == 1       # 1 GHz
    assert p.bus_cycle_ns == 4   # 250 MHz
    assert p.bus_width_bytes == 32


def test_cache_geometry():
    p = DEFAULT_PARAMS
    assert p.cache_sets == (1 << 20) // 64
    assert p.blocks_for(1) == 1
    assert p.blocks_for(64) == 1
    assert p.blocks_for(65) == 2
    assert p.blocks_for(256) == 4


def test_data_cycles_rounding():
    p = DEFAULT_PARAMS
    assert p.data_cycles(1) == 1
    assert p.data_cycles(32) == 1
    assert p.data_cycles(33) == 2
    assert p.data_cycles(64) == 2
    assert p.data_cycles(256) == 8


def test_max_payload():
    assert DEFAULT_PARAMS.max_payload_bytes == 248


def test_replace_returns_modified_copy():
    p = DEFAULT_PARAMS.replace(flow_control_buffers=2)
    assert p.flow_control_buffers == 2
    assert DEFAULT_PARAMS.flow_control_buffers == 8
    assert isinstance(p, SystemParams)


def test_infinite_flow_control_is_none():
    p = DEFAULT_PARAMS.replace(flow_control_buffers=None)
    p.validate()
    assert p.flow_control_buffers is None


@pytest.mark.parametrize(
    "changes",
    [
        {"num_nodes": 0},
        {"cache_block_bytes": 48},
        {"cache_bytes": 100},
        {"bus_width_bits": 100},
        {"header_bytes": 512},
        {"flow_control_buffers": 0},
    ],
)
def test_validate_rejects_bad_params(changes):
    with pytest.raises(ValueError):
        DEFAULT_PARAMS.replace(**changes).validate()


def test_default_params_validate():
    DEFAULT_PARAMS.validate()


def test_software_costs_defaults():
    c = DEFAULT_COSTS
    assert c.blkbuf_flush == 12       # stated in the paper, Sec. 6.1.1
    assert c.udma_threshold == 96     # stated in the paper, Sec. 6.1.1
    assert c.replace(udma_threshold=128).udma_threshold == 128
    assert isinstance(c, SoftwareCosts)
