"""Fast smoke tests for the figure experiments (tiny workloads).

The benchmark suite runs the calibrated quick/full configurations;
these tests only verify the experiment plumbing end-to-end with
minimal workloads, so the unit suite stays fast.
"""

from repro.experiments import figure1, figure3, figure4

TINY = ("em3d",)


def test_figure3a_plumbing():
    result = figure3.run_figure3a(quick=True, workloads=TINY)
    assert any(row[0] == "em3d" for row in result.rows)
    matrix = result.extras["matrix"]
    # Baseline normalisation: AP3000 at fcb=8 is exactly 1.0.
    normalized = result.extras["normalized"]
    assert normalized[("em3d", "ap3000", 8)] == 1.0
    # Sanity: fcb=1 is the worst configuration for every fifo NI.
    for ni in ("cm5", "udma", "ap3000"):
        times = [matrix[("em3d", ni, f)] for f in (1, 2, 8, None)]
        assert times[0] == max(times)


def test_figure3b_plumbing():
    result = figure3.run_figure3b(quick=True, workloads=TINY)
    normalized = result.extras["normalized"]
    assert ("em3d", "cni32qm") in normalized
    assert all(v > 0 for v in normalized.values())


def test_figure4_plumbing():
    result = figure4.run(quick=True, workloads=TINY)
    normalized = result.extras["normalized"]
    assert ("em3d", 1) in normalized
    # More buffers never hurt the register-mapped NI.
    assert normalized[("em3d", None)] <= normalized[("em3d", 1)] * 1.02


def test_figure1_breakdown_sums_to_one():
    b = figure1.breakdown_for("em3d", quick=True)
    total = b["compute"] + b["data_transfer"] + b["buffering"]
    assert abs(total - 1.0) < 1e-9
    assert b["t1_us"] >= b["tinf_us"] * 0.98
