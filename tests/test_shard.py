"""Tests for the sharded-simulation layer (repro.shard).

Covers the pieces individually — wire codec, end-of-tick flush hook,
window-bounded ``run(until=...)``, canonical ordered delivery — and
then the headline contract end to end: a sharded run is bit-identical
to the single-process reference, on both transports, and a dead shard
surfaces as a structured failure.
"""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.network import Message, Network
from repro.network.message import MessageKind
from repro.shard import ShardFailure, ShardJob, codec, run_sharded
from repro.sim import Simulator
from repro.sim.events import SimulationError


def halo_job(num_shards, num_nodes=16, topology=None, **overrides):
    params = DEFAULT_PARAMS.replace(
        ordered_delivery=True,
        network_topology=topology,
        flow_control_buffers=8,
    )
    return ShardJob(
        workload="halo", ni="cni32qm",
        params=params, costs=DEFAULT_COSTS,
        num_nodes=num_nodes, num_shards=num_shards,
        kwargs=(("compute_ns", 1000), ("iterations", 2),
                ("payload_bytes", 32)),
        collect_digest=True,
        **overrides,
    )


# ------------------------------------------------------------ codec

def test_codec_roundtrips_scalars_and_containers():
    for obj in (None, True, False, 0, -1, 1 << 40, -(1 << 62),
                1 << 80,                       # bigint (text fallback)
                3.25, "plain", "unicódé ❤",
                b"\x00raw\xff", (), [], {},
                (1, "two", [3.0, {"four": b"5"}], (None,))):
        assert codec.unpack(codec.pack(obj)) == obj


def test_codec_roundtrips_messages_including_nested():
    inner = Message(src=3, dst=0, size=64, handler="halo", body=7,
                    sent_at=120, src_seq=9)
    bounce = Message(src=0, dst=3, size=8, kind=MessageKind.RETURN,
                     body=inner, bounces=2, sent_at=200)
    out = codec.unpack(codec.pack([(200, bounce)]))
    [(when, decoded)] = out
    assert when == 200
    assert decoded.kind is MessageKind.RETURN
    assert decoded.bounces == 2
    assert decoded.src_seq is None
    assert decoded.body.handler == "halo"
    assert decoded.body.src_seq == 9
    assert decoded.body.sent_at == 120


def test_codec_frames_and_error_cases():
    frame = codec.encode(codec.WINDOW, (100, [[b"blob"]]))
    ftype, payload = codec.decode(frame)
    assert ftype == codec.WINDOW
    assert payload == (100, [[b"blob"]])
    with pytest.raises(TypeError):
        codec.pack(object())
    with pytest.raises(ValueError):
        codec.unpack(codec.pack(1) + b"junk")


# ------------------------------------- end-of-tick hook + run(until=)

def test_step_refuses_eot_hook():
    sim = Simulator()
    sim._eot_hook = lambda when: False
    with pytest.raises(SimulationError):
        sim.step()


def test_wheel_scheduler_refuses_eot_hook():
    sim = Simulator(scheduler="wheel")
    sim._eot_hook = lambda when: False
    with pytest.raises(SimulationError):
        sim.run()


def test_eot_hook_can_extend_the_tick():
    """A hook that schedules same-tick work keeps the tick draining."""
    sim = Simulator()
    seen = []
    injected = []

    def hook(when):
        if when == 10 and not injected:
            injected.append(True)
            ev = sim.event()
            ev.add_callback(lambda e: seen.append("late"))
            ev.succeed(delay=0)
            return True
        return False

    sim._eot_hook = hook
    first = sim.event()
    first.add_callback(lambda e: seen.append("early"))
    first.succeed(delay=10)
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator()
    fired = []
    for t in (5, 50, 51):
        ev = sim.event()
        ev.add_callback(lambda e, t=t: fired.append(t))
        ev.succeed(delay=t)
    sim.run(until=50)
    assert fired == [5, 50]
    assert sim.now == 50
    sim.run()
    assert fired == [5, 50, 51]


# ------------------------------------------------- ordered delivery

def test_ordered_delivery_is_canonical_within_a_tick():
    """Same-tick arrivals deliver in (send_time, src, src_seq) order,
    regardless of injection order."""
    params = DEFAULT_PARAMS.replace(ordered_delivery=True)
    sim = Simulator()
    net = Network(sim, params)
    got = []
    net.register(0, lambda m: got.append((m.src, m.src_seq)),
                 lambda m: None)

    def burst():
        # Inject from high src to low src at the same tick; canonical
        # order must come out sorted by src regardless.
        for src in (3, 2, 1):
            net.inject(Message(src=src, dst=0, size=32,
                               sent_at=sim.now))
        yield sim.timeout(1)

    sim.process(burst())
    sim.run()
    assert got == [(1, 0), (2, 0), (3, 0)]


# --------------------------------------------------- end-to-end runs

def test_sharded_matches_single_process_reference():
    reference = run_sharded(halo_job(1), transport="inline")
    for shards in (2, 4):
        result = run_sharded(halo_job(shards), transport="inline")
        assert result.model_digest == reference.model_digest
        assert result.elapsed_ns == reference.elapsed_ns
        assert result.messages_sent == reference.messages_sent
        assert result.ni_counters == reference.ni_counters


def test_partitions_are_digest_identical():
    block = run_sharded(halo_job(4, partition="block"),
                        transport="inline")
    stride = run_sharded(halo_job(4, partition="stride"),
                         transport="inline")
    assert block.model_digest == stride.model_digest


def test_fork_matches_inline():
    inline = run_sharded(halo_job(2, topology="mesh"),
                         transport="inline")
    forked = run_sharded(halo_job(2, topology="mesh"),
                         transport="fork")
    assert forked.model_digest == inline.model_digest
    assert forked.kernel_digests == inline.kernel_digests


def test_shard_stats_surface_in_metrics():
    result = run_sharded(halo_job(2), transport="inline")
    assert result.metrics["shard.shards"] == 2
    assert result.metrics["shard.windows"] == result.shard_stats["windows"]
    assert result.shard_stats["busy_ns"] >= \
        result.shard_stats["critical_path_ns"] > 0


def test_killed_shard_raises_structured_failure():
    job = halo_job(2, die_at_window=(1, 1))
    with pytest.raises(ShardFailure) as exc_info:
        run_sharded(job, transport="fork")
    report = exc_info.value.report
    assert report["shard"] == 1
    assert report["exitcode"] == 1
    assert isinstance(report["window"], int)


# ------------------------------------------------------- validation

def test_sharding_rejects_faults():
    from repro.faults import FaultConfig

    job = halo_job(2)
    bad = job.params.replace(faults=FaultConfig(seed=1))
    with pytest.raises(ValueError, match="fault"):
        run_sharded(ShardJob(**{**job.__dict__, "params": bad}))


def test_sharding_rejects_tracing_and_wheel():
    # Spans are supported under sharding (merged in canonical order);
    # full tracing is not — record interleaving across nodes is not
    # partition-invariant.
    job = halo_job(2)
    with pytest.raises(ValueError, match="tracing"):
        run_sharded(ShardJob(**{
            **job.__dict__, "params": job.params.replace(tracing=True)}))
    with pytest.raises(ValueError, match="heap"):
        run_sharded(ShardJob(**{
            **job.__dict__,
            "params": job.params.replace(sim_scheduler="wheel")}))


def test_sharding_rejects_unknown_partition():
    with pytest.raises(ValueError, match="partition"):
        run_sharded(halo_job(2, partition="spiral"))


def test_sharding_rejects_unshardable_workload():
    job = halo_job(2)
    with pytest.raises(ValueError, match="shardable"):
        run_sharded(ShardJob(**{
            **job.__dict__, "workload": "em3d", "kwargs": ()}),
            transport="inline")
