"""Tests for the parallel sweep executor, the result cache, and the
kernel's Timeout pooling — the machinery behind ``--jobs`` /
``--no-cache``.

The equivalence tests are the load-bearing ones: whatever the worker
count or cache state, the merged cell list must be identical to a
serial, uncached run.
"""

import dataclasses

import pytest

from repro.config import DEFAULT_COSTS
from repro.experiments.cache import ResultCache, job_key
from repro.experiments.common import default_params
from repro.experiments.parallel import (
    CellResult,
    Job,
    SweepExecutor,
    freeze_kwargs,
    resolve_jobs,
    run_cell,
)


def _micro_jobs():
    """A small mixed grid: cheap but exercises variants and throttling."""
    params = default_params(flow_control_buffers=8)
    jobs = [
        Job(label="t:pingpong:cm5", ni="cm5", workload="pingpong",
            params=params, costs=DEFAULT_COSTS,
            kwargs=freeze_kwargs(dict(payload_bytes=56, rounds=6, warmup=2))),
        Job(label="t:stream:cni32qm", ni="cni32qm", workload="stream",
            params=params, costs=DEFAULT_COSTS,
            kwargs=freeze_kwargs(dict(payload_bytes=248, transfers=8,
                                      warmup=2, throttle_ns=0))),
        Job(label="t:stream:variant", ni="cni32qm", workload="stream",
            params=params, costs=DEFAULT_COSTS,
            variant=("i4", (("cache_entries", 4),)),
            kwargs=freeze_kwargs(dict(payload_bytes=248, transfers=8,
                                      warmup=2, throttle_ns=0))),
        Job(label="t:pingpong:udma", ni="udma", workload="pingpong",
            params=params, costs=DEFAULT_COSTS, always_udma=True,
            kwargs=freeze_kwargs(dict(payload_bytes=56, rounds=6, warmup=2))),
    ]
    return jobs


def test_serial_vs_parallel_equivalence():
    """jobs=1 and jobs=4 must produce identical cells, in job order."""
    jobs = _micro_jobs()
    serial = SweepExecutor(jobs=1).map(jobs)
    parallel = SweepExecutor(jobs=4).map(jobs)
    assert [c.label for c in serial] == [j.label for j in jobs]
    assert serial == parallel


def test_run_cell_variant_registration_is_self_contained():
    """Jobs carry variants declaratively; run_cell registers them."""
    [cell] = SweepExecutor(jobs=1).map([_micro_jobs()[2]])
    assert cell.elapsed_ns > 0
    # Both receiver counters exist: the variant NI really ran.
    receiver = cell.ni_counters[1]
    assert "deposits_bypassed" in receiver or "deposits_cached" in receiver


def test_resolve_jobs_precedence(monkeypatch):
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == 1          # floor at one worker
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs() == 7
    assert resolve_jobs(2) == 2          # explicit beats env
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs() >= 1


def test_cache_hit_returns_identical_result(tmp_path):
    jobs = _micro_jobs()[:2]
    cache = ResultCache(root=str(tmp_path / "cache"))
    first = SweepExecutor(jobs=1, cache=cache).map(jobs)
    assert cache.hits == 0 and cache.misses == len(jobs)

    cache2 = ResultCache(root=str(tmp_path / "cache"))
    second = SweepExecutor(jobs=1, cache=cache2).map(jobs)
    assert cache2.hits == len(jobs) and cache2.misses == 0
    assert second == first


def test_cache_key_moves_when_params_change():
    base = _micro_jobs()[0]
    changed = dataclasses.replace(
        base, params=base.params.replace(flow_control_buffers=2)
    )
    assert job_key(base) != job_key(changed)
    # ... and for every other spec field an experiment varies:
    assert job_key(base) != job_key(dataclasses.replace(base, ni="ap3000"))
    assert job_key(base) != job_key(
        dataclasses.replace(base, kwargs=freeze_kwargs(
            dict(payload_bytes=56, rounds=7, warmup=2)))
    )
    assert job_key(base) != job_key(
        dataclasses.replace(base, variant=("x", (("cache_entries", 4),)))
    )
    assert job_key(base) != job_key(
        dataclasses.replace(base, sender_throttle_ns=100)
    )


def test_cache_invalidation_recomputes(tmp_path):
    """A changed param misses the cache and measures a different run."""
    cache = ResultCache(root=str(tmp_path / "cache"))
    executor = SweepExecutor(jobs=1, cache=cache)
    # A fifo NI is fcb-sensitive (coherent NIs, by design, are not).
    base = dataclasses.replace(_micro_jobs()[1], ni="cm5",
                               label="t:stream:cm5")
    starved = dataclasses.replace(
        base, params=base.params.replace(flow_control_buffers=1),
        label="t:stream:cm5:starved",
    )
    [warm] = executor.map([base])
    [cold] = executor.map([starved])
    assert cache.hits == 0 and cache.misses == 2
    assert warm.elapsed_ns != cold.elapsed_ns


def test_cache_roundtrip_preserves_histogram_buckets(tmp_path):
    """JSON storage must not lose the exact size buckets Table 4 reads."""
    cache = ResultCache(root=str(tmp_path / "cache"))
    job = _micro_jobs()[0]
    direct = run_cell(job)
    cache.put(job, direct)
    loaded = cache.get(job)
    assert loaded == direct
    assert loaded.message_sizes.buckets() == direct.message_sizes.buckets()
    assert loaded.message_sizes.count == direct.message_sizes.count


def test_cache_corrupt_entry_degrades_to_miss(tmp_path):
    cache = ResultCache(root=str(tmp_path / "cache"))
    job = _micro_jobs()[0]
    cache.put(job, run_cell(job))
    path = cache._path(job_key(job))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    assert cache.get(job) is None
    assert cache.misses == 1


def test_timeout_pool_reuse_keeps_event_order():
    """Recycled Timeouts must behave exactly like fresh allocations.

    Value-carrying timeouts bypass the free list; value-less ones are
    recycled.  Running the same heavily-recycling program both ways
    must give the same interleaving and the same clock.
    """
    from repro.sim import Simulator

    def trace_run(value):
        sim = Simulator()
        log = []

        def worker(name, delay):
            for _ in range(50):
                yield sim.timeout(delay, value)
                log.append((sim.now, name))

        # Same-time collisions on purpose: 2+3 vs 6, 2*3 vs 6 ...
        sim.process(worker("a", 2))
        sim.process(worker("b", 3))
        sim.process(worker("c", 6))
        sim.run()
        return log, sim.now

    pooled = trace_run(None)
    unpooled = trace_run("v")
    assert pooled[0] == [(t, n) for t, n in unpooled[0]]
    assert pooled[1] == unpooled[1]


def test_timeout_pool_recycles_and_rearms():
    from repro.sim import Simulator

    sim = Simulator()

    def ticker():
        for _ in range(10):
            yield sim.timeout(5)

    sim.process(ticker())
    sim.run()
    assert sim.now == 50
    assert sim._timeout_pool          # something was recycled
    # A recycled timeout comes back clean and re-armed.
    recycled = sim._timeout_pool[-1]
    fresh = sim.timeout(7)
    assert fresh is recycled
    assert fresh.delay == 7 and fresh.callbacks == [] and not fresh.processed


def test_expand_names_all_composes():
    from repro.experiments.runner import ALL_ORDER, expand_names

    assert expand_names(["all"]) == list(ALL_ORDER)
    combined = expand_names(["figure3", "all"])
    assert combined[0] == "figure3"
    assert combined.count("figure3") == 1
    assert set(ALL_ORDER) <= set(combined)
    assert expand_names(["table4", "table4"]) == ["table4"]
    # Unknown names survive expansion for the runner to report.
    assert expand_names(["nope"]) == ["nope"]


def test_runner_json_output(tmp_path, capsys):
    import json

    from repro.experiments.runner import main

    out = tmp_path / "results.json"
    assert main(["table1", "--json", str(out)]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert set(payload) == {"table1"}
    assert payload["table1"]["headers"]
    assert payload["table1"]["rows"]


def test_cell_errors_name_the_experiment():
    from repro.experiments.common import ExperimentResult

    result = ExperimentResult(
        experiment="demo", headers=["NI", "latency"],
        rows=[["cm5", 1.0]],
    )
    assert result.cell("cm5", "latency") == 1.0
    with pytest.raises(KeyError, match="demo.*no row 'nope'.*'cm5'"):
        result.cell("nope", "latency")
    with pytest.raises(KeyError, match="demo.*no column 'zap'.*latency"):
        result.cell("cm5", "zap")


# ------------------------------------- concurrent multi-process writes


def _minimal_cell(label="conc") -> CellResult:
    return CellResult(label=label, elapsed_ns=1, states={},
                      messages_sent=0, bounces=0,
                      flow_control_buffers=None)


def _conc_job() -> Job:
    return Job(label="conc", ni="cm5", workload="pingpong",
               params=default_params(), costs=DEFAULT_COSTS,
               kwargs=freeze_kwargs(dict(payload_bytes=8, rounds=1)))


def _hammer_put(args):
    """Worker for the multi-process write race (module-level so it
    pickles under any multiprocessing start method)."""
    root, rounds = args
    cache = ResultCache(root)
    job, result = _conc_job(), _minimal_cell()
    for _ in range(rounds):
        cache.put(job, result)
    return True


def test_cache_concurrent_multiprocess_writers_same_key(tmp_path):
    """The job service points every worker at one shared cache
    directory: racing writers of the same content key must always
    leave one complete, loadable entry and zero staging debris."""
    import multiprocessing

    root = str(tmp_path / "shared-cache")
    with multiprocessing.Pool(4) as pool:
        assert all(pool.map(_hammer_put, [(root, 30)] * 4))
    cache = ResultCache(root)
    loaded = cache.get(_conc_job())
    assert loaded is not None and loaded.label == "conc"
    assert cache.corrupt_entries == 0
    leftovers = [
        name
        for _dir, _subdirs, files in __import__("os").walk(root)
        for name in files if name.endswith(".tmp")
    ]
    assert leftovers == []


def test_cache_put_failure_degrades_to_logged_miss(tmp_path, caplog):
    """An unwritable store (here: the root is a *file*) must never
    raise out of put(); the run continues uncached with a warning."""
    import logging

    root = tmp_path / "not-a-dir"
    root.write_text("occupied")
    cache = ResultCache(str(root))
    with caplog.at_level(logging.WARNING, logger="repro.cache"):
        cache.put(_conc_job(), _minimal_cell())  # must not raise
    assert any("running uncached" in r.message for r in caplog.records)
    assert cache.get(_conc_job()) is None  # a plain miss afterwards


def test_cache_clear_sweeps_orphaned_tmp_files(tmp_path):
    import os

    cache = ResultCache(str(tmp_path))
    cache.put(_conc_job(), _minimal_cell())
    shard = next(
        os.path.join(tmp_path, d) for d in os.listdir(tmp_path)
        if os.path.isdir(os.path.join(tmp_path, d))
    )
    orphan = os.path.join(shard, "killed-writer.tmp")
    open(orphan, "w").close()
    cache.clear()
    assert not os.path.exists(orphan)
    assert cache.get(_conc_job()) is None
