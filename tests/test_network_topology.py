"""Tests for the 2D mesh fabric extension."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.network import Message, Network
from repro.network.topology import MeshFabric
from repro.node import Machine
from repro.sim import Simulator


def make_mesh(nodes=16):
    sim = Simulator()
    return sim, MeshFabric(sim, DEFAULT_PARAMS, nodes)


# ------------------------------------------------------------- routing

def test_mesh_geometry_square():
    _, mesh = make_mesh(16)
    assert (mesh.width, mesh.height) == (4, 4)
    assert mesh.coords(0) == (0, 0)
    assert mesh.coords(5) == (1, 1)
    assert mesh.coords(15) == (3, 3)


def test_dimension_order_route():
    _, mesh = make_mesh(16)
    # 0 (0,0) -> 15 (3,3): X first (0->1->2->3), then Y (3->7->11->15).
    hops = mesh.route(0, 15)
    assert hops == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]


def test_route_to_self_is_empty():
    _, mesh = make_mesh(16)
    assert mesh.route(7, 7) == []


def test_route_handles_negative_directions():
    _, mesh = make_mesh(16)
    hops = mesh.route(15, 0)
    assert hops[0] == (15, 14)
    assert hops[-1] == (4, 0)
    assert len(hops) == 6


def test_route_length_is_manhattan_distance():
    _, mesh = make_mesh(16)
    for src in range(16):
        for dst in range(16):
            x0, y0 = mesh.coords(src)
            x1, y1 = mesh.coords(dst)
            assert len(mesh.route(src, dst)) == abs(x1 - x0) + abs(y1 - y0)


# ------------------------------------------------------------- delivery

def test_delivery_latency_scales_with_distance():
    sim, mesh = make_mesh(16)
    arrivals = {}

    def arrive_factory(tag):
        return lambda msg: arrivals.__setitem__(tag, sim.now)

    near = Message(src=0, dst=1, size=64)
    far = Message(src=0, dst=15, size=64)
    sim.process(mesh.deliver(near, arrive_factory("near")))
    sim.process(mesh.deliver(far, arrive_factory("far")))
    sim.run()
    assert arrivals["far"] > arrivals["near"]
    # near: 1 hop * 10 + serialization 20 = 30.
    assert arrivals["near"] == 30


def test_link_contention_serializes():
    sim, mesh = make_mesh(16)
    done = []

    def send(msg):
        return mesh.deliver(msg, lambda m: done.append(sim.now))

    # Two messages share the 0->1 link.
    sim.process(send(Message(src=0, dst=1, size=256)))
    sim.process(send(Message(src=0, dst=1, size=256)))
    sim.run()
    solo = 10 + 80            # hop + 8 beats
    assert done[0] == solo
    assert done[1] > solo     # waited for the link


def test_mean_delay_accounting():
    sim, mesh = make_mesh(16)
    sim.process(mesh.deliver(Message(src=0, dst=1, size=64),
                             lambda m: None))
    sim.run()
    assert mesh.mean_delay_ns == 30
    assert mesh.counters["link_traversals"] == 1


# ------------------------------------------------------------- integration

def test_network_routes_data_through_fabric_but_not_control():
    sim = Simulator()
    mesh = MeshFabric(sim, DEFAULT_PARAMS, 16)
    net = Network(sim, DEFAULT_PARAMS, fabric=mesh)
    data_times, control_times = [], []
    for n in range(16):
        net.register(
            n,
            lambda m, n=n: data_times.append(sim.now),
            lambda m, n=n: control_times.append(sim.now),
        )
    from repro.network.message import MessageKind
    net.inject(Message(src=0, dst=15, size=64))
    net.inject(Message(src=0, dst=15, size=8, kind=MessageKind.ACK))
    sim.run()
    assert control_times == [40]        # ideal second network
    assert data_times[0] > 40           # 6 hops through the mesh


def test_machine_with_mesh_topology_end_to_end():
    params = DEFAULT_PARAMS.replace(network_topology="mesh")
    machine = Machine(params, DEFAULT_COSTS, "cni32qm", num_nodes=16)
    got = []
    machine.node(15).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        yield from node.runtime.send(15, "h", 56)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: got)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(15)))
    machine.sim.run(until=done)
    assert len(got) == 1
    assert machine.network.fabric.counters["delivered"] >= 1


def test_bad_topology_rejected():
    with pytest.raises(ValueError):
        DEFAULT_PARAMS.replace(network_topology="hypercube").validate()


# ------------------------------------------------- non-square meshes

def test_mesh_geometry_non_square_24():
    _, mesh = make_mesh(24)
    assert (mesh.width, mesh.height) == (4, 6)
    assert mesh.coords(23) == (3, 5)
    for src, dst in ((0, 23), (7, 16), (22, 1)):
        x0, y0 = mesh.coords(src)
        x1, y1 = mesh.coords(dst)
        assert len(mesh.route(src, dst)) == abs(x1 - x0) + abs(y1 - y0)


def test_mesh_geometry_ragged_96():
    _, mesh = make_mesh(96)
    # isqrt(96) = 9 columns; 96 = 10 full rows + 6 in the last.
    assert (mesh.width, mesh.height) == (9, 11)
    assert mesh.coords(95) == (5, 10)
    assert mesh.static_hops(0, 95) == 5 + 10
    assert len(mesh.route(0, 95)) == 15


def test_non_square_mesh_conserves_messages():
    sim, mesh = make_mesh(24)
    arrivals = {}

    def arrive(msg):
        arrivals[msg.dst] = arrivals.get(msg.dst, 0) + 1

    for src in range(24):
        dst = (src + 5) % 24
        sim.process(mesh.deliver(Message(src=src, dst=dst, size=64),
                                 arrive))
    sim.run()
    # Every message delivered exactly once: no loss, no duplication.
    assert mesh.counters["delivered"] == 24
    assert sorted(arrivals) == list(range(24))
    assert all(count == 1 for count in arrivals.values())


# ------------------------------------------------------- route cache

def test_route_cache_hits_return_same_list():
    _, mesh = make_mesh(16)
    first = mesh.route(0, 15)
    assert mesh.route(0, 15) is first       # cached object reused


def test_route_cache_evicts_lru(monkeypatch):
    from repro.network import topology

    monkeypatch.setattr(topology, "ROUTE_CACHE_MAX", 3)
    _, mesh = make_mesh(16)
    a = mesh.route(0, 1)
    mesh.route(0, 2)
    mesh.route(0, 3)
    assert mesh.route(0, 1) is a            # hit moves (0,1) to the end
    mesh.route(0, 4)                        # evicts (0,2), the LRU
    assert (0, 2) not in mesh._route_cache
    assert (0, 1) in mesh._route_cache
    assert len(mesh._route_cache) == 3


# ------------------------------------------------------------- torus

def test_torus_wraps_the_shorter_way():
    from repro.network.topology import TorusFabric

    sim = Simulator()
    torus = TorusFabric(sim, DEFAULT_PARAMS, 16)
    # 0 (0,0) -> 3 (3,0): one wrap hop backwards, not three forward.
    assert torus.route(0, 3) == [(0, 3)]
    assert torus.static_hops(0, 3) == 1
    # Ties (distance 2 either way on a 4-ring) go the positive way.
    assert torus.route(0, 2) == [(0, 1), (1, 2)]
    # Opposite corner is one wrap in each dimension, not 3+3.
    assert torus.static_hops(0, 15) == 2
    assert torus.route(0, 15) == [(0, 3), (3, 15)]


def test_torus_requires_full_rectangle():
    from repro.network.topology import TorusFabric

    with pytest.raises(ValueError):
        TorusFabric(Simulator(), DEFAULT_PARAMS, 10)


# -------------------------------------------------------- partitions

def test_block_and_stride_partitions():
    from repro.network.topology import (
        PARTITIONS, block_partition, stride_partition,
    )

    assert block_partition(8, 2) == (0, 0, 0, 0, 1, 1, 1, 1)
    assert stride_partition(8, 2) == (0, 1, 0, 1, 0, 1, 0, 1)
    for partition in PARTITIONS.values():
        assign = partition(10, 3)
        assert len(assign) == 10
        assert set(assign) == {0, 1, 2}
        with pytest.raises(ValueError):
            partition(4, 5)
        with pytest.raises(ValueError):
            partition(4, 0)
