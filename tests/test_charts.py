"""Tests for the text chart renderers."""

from repro.experiments.charts import grouped_chart, hbar_chart, stacked_chart


def test_hbar_basic_scaling():
    text = hbar_chart([("a", 1.0), ("bb", 2.0)], width=10)
    lines = text.splitlines()
    assert len(lines) == 2
    # Full-scale bar for the max.
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5
    assert "1.00" in lines[0] and "2.00" in lines[1]


def test_hbar_empty():
    assert hbar_chart([]) == "(no data)"


def test_hbar_reference_marker():
    text = hbar_chart([("x", 0.5), ("y", 2.0)], width=20, reference=1.0)
    assert "|" in text


def test_stacked_sums_and_legend():
    text = stacked_chart(
        [("w", {"compute": 0.5, "buffering": 0.5})],
        segments=("compute", "buffering"),
        width=10,
    )
    lines = text.splitlines()
    assert lines[0].count("#") == 5   # first segment
    assert lines[0].count("=") == 5   # second segment
    assert "#=compute" in lines[-1]
    assert "==buffering" in lines[-1].replace("=buffering", "=buffering")


def test_stacked_handles_missing_segment():
    text = stacked_chart([("w", {"compute": 1.0})],
                         segments=("compute", "buffering"))
    assert "(no data)" not in text


def test_grouped_chart_reference_line():
    text = grouped_chart(
        [("bench", [("ni-a", 0.5), ("ni-b", 1.5)])], width=20,
        reference=1.0,
    )
    assert "bench:" in text
    assert text.count("|") == 2      # reference mark on both bars
    assert "0.50" in text and "1.50" in text


def test_charts_render_in_figure1_output():
    # Integration: the figure experiment carries a chart.
    from repro.experiments import figure1
    # Use the cheap plumbing path.
    b = figure1.breakdown_for("em3d", quick=True)
    assert 0 <= b["buffering"] <= 1
