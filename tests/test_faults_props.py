"""Property-based tests for the reliability primitives.

Two families:

- :func:`repro.faults.retransmit_backoff` — monotone in the attempt
  count, bounded by the configured cap, never overflows, and a pure
  function of ``(attempts, config)``;
- :class:`repro.faults.DupFilter` — at-most-once acceptance per
  ``(src, seq)`` pair under any interleaving of duplicated and
  reordered deliveries;
- :class:`repro.faults.FaultInjector` — verdicts are a deterministic
  function of the seed and the draw sequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, FaultInjector, retransmit_backoff
from repro.faults.config import MAX_BACKOFF_EXPONENT
from repro.faults.reliability import DupFilter
from repro.network import Message
from repro.sim import Simulator

configs = st.builds(
    FaultConfig,
    retry_timeout_ns=st.integers(min_value=1, max_value=100_000),
    retry_backoff_factor=st.integers(min_value=1, max_value=8),
    retry_timeout_cap_ns=st.integers(min_value=100_000, max_value=10**9),
)


# ----------------------------------------------------------- backoff

@given(configs, st.integers(min_value=0, max_value=1000))
def test_backoff_monotone_in_attempts(config, attempts):
    assert (retransmit_backoff(attempts, config)
            <= retransmit_backoff(attempts + 1, config))


@given(configs, st.integers(min_value=0, max_value=10**6))
def test_backoff_respects_cap(config, attempts):
    timeout = retransmit_backoff(attempts, config)
    assert 0 < timeout <= config.retry_timeout_cap_ns
    # First attempt waits exactly the base timeout (possibly clipped).
    assert retransmit_backoff(0, config) == min(
        config.retry_timeout_ns, config.retry_timeout_cap_ns)


@given(configs, st.integers(min_value=0, max_value=10**6))
def test_backoff_is_pure(config, attempts):
    assert (retransmit_backoff(attempts, config)
            == retransmit_backoff(attempts, config))


@given(configs)
def test_backoff_exponent_clamped(config):
    """Huge attempt counts cost the same as MAX_BACKOFF_EXPONENT —
    no unbounded exponentiation."""
    assert (retransmit_backoff(10**9, config)
            == retransmit_backoff(MAX_BACKOFF_EXPONENT, config))


@given(configs)
def test_backoff_rejects_negative_attempts(config):
    import pytest

    with pytest.raises(ValueError):
        retransmit_backoff(-1, config)


# -------------------------------------------------------- dup filter

#: Deliveries: per-source contiguous sequence numbers, shuffled and
#: duplicated arbitrarily.
deliveries = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),   # src
              st.integers(min_value=0, max_value=15)),  # seq
    max_size=120,
)


@given(deliveries)
@settings(max_examples=200)
def test_dup_filter_at_most_once(pairs):
    dedup = DupFilter()
    accepted = []
    for src, seq in pairs:
        if dedup.accept(src, seq):
            accepted.append((src, seq))
    # At most once: no pair accepted twice.
    assert len(accepted) == len(set(accepted))
    # Every pair offered was either accepted once or was a duplicate.
    assert set(accepted) == set(pairs)
    # After acceptance, the filter reports the pair as seen.
    for src, seq in pairs:
        assert dedup.seen(src, seq)


@given(st.integers(min_value=1, max_value=40),
       st.randoms(use_true_random=False))
def test_dup_filter_in_order_keeps_nothing_pending(count, rng):
    """Delivering a contiguous prefix (in any order) with every gap
    eventually filled leaves no sequence held out of order."""
    dedup = DupFilter()
    seqs = list(range(count))
    rng.shuffle(seqs)
    for seq in seqs:
        dedup.accept(0, seq)
    assert dedup.pending(0) == 0


# ---------------------------------------------------- injector stream

@given(
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_injector_verdicts_deterministic(seed, drop, corrupt, count):
    """Two injectors with the same seed, fed the same message
    sequence, reach identical verdict counters."""

    def run_stream():
        sim = Simulator()
        config = FaultConfig(seed=seed, drop_prob=drop,
                             corrupt_prob=corrupt, reliable=False,
                             watchdog=False)
        injector = FaultInjector(sim, config)
        for i in range(count):
            msg = Message(src=0, dst=1, size=32, body=i)
            injector.on_inject(msg, control=False)
        return injector.counters.as_dict()

    assert run_stream() == run_stream()
