"""Additional runtime edge-case tests."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.network.message import MessageKind


def make_machine(ni_name="cni32qm", nodes=2):
    return Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=nodes)


def test_service_max_handlers_limits_execution():
    machine = make_machine()
    handled = []
    machine.node(1).runtime.register_handler(
        "h", lambda r, m: handled.append(m.body)
    )

    def sender(node):
        for i in range(5):
            yield from node.runtime.send(1, "h", 8, body=i)

    def receiver(node):
        # Let everything arrive first.
        yield from node.compute(30_000)
        count = yield from node.runtime.service(max_handlers=2)
        return count

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert done.value == 2
    assert len(handled) == 2


def test_handlers_observe_message_kind_and_source():
    machine = make_machine()
    seen = []
    machine.node(1).runtime.register_handler(
        "h", lambda r, m: seen.append((m.src, m.kind, m.handler))
    )

    def sender(node):
        yield from node.runtime.send(1, "h", 8)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: seen)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert seen == [(0, MessageKind.ACTIVE_MESSAGE, "h")]


def test_wait_for_immediate_predicate_costs_little():
    machine = make_machine()

    def prog(node):
        start = machine.sim.now
        yield from node.runtime.wait_for(lambda: True)
        return machine.sim.now - start

    done = machine.sim.process(prog(machine.node(0)))
    machine.sim.run(until=done)
    # One empty poll at most (a cold cached poll can miss to memory).
    assert done.value <= 200


def test_sent_sizes_histogram_counts_only_recorded():
    machine = make_machine()
    machine.node(1).runtime.register_handler("h", lambda r, m: None)

    def sender(node):
        yield from node.runtime.send(1, "h", 4)
        yield from node.runtime.send(1, "h", 4)
        yield from node.runtime.send(1, "h", 100, record=False)

    def receiver(node):
        yield from node.runtime.wait_for(
            lambda: node.runtime.counters["handled"] >= 3
        )

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    sizes = machine.node(0).runtime.sent_sizes
    assert sizes.count == 2
    assert sizes.buckets() == {12: 2}


def test_two_machines_are_fully_isolated():
    a = make_machine()
    b = make_machine()
    got_a, got_b = [], []
    a.node(1).runtime.register_handler("h", lambda r, m: got_a.append(m))
    b.node(1).runtime.register_handler("h", lambda r, m: got_b.append(m))

    def sender(machine):
        def run(node):
            yield from node.runtime.send(1, "h", 8)
        return run(machine.node(0))

    def receiver(machine, got):
        def run(node):
            yield from node.runtime.wait_for(lambda: got)
        return run(machine.node(1))

    pa = a.sim.process(sender(a))
    da = a.sim.process(receiver(a, got_a))
    a.sim.run(until=da)
    pb = b.sim.process(sender(b))
    db = b.sim.process(receiver(b, got_b))
    b.sim.run(until=db)
    assert len(got_a) == 1 and len(got_b) == 1


@pytest.mark.parametrize("ni_name", ["cm5", "ap3000", "cni32qm"])
def test_multi_hop_traffic_across_16_nodes(ni_name):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=16)
    received = [0]

    def on_hop(rt, msg):
        received[0] += 1
        nxt = (rt.node.node_id + 1) % 16
        if msg.body > 0:
            yield from rt.send(nxt, "hop", 8, body=msg.body - 1)

    for node in machine:
        node.runtime.register_handler("hop", on_hop)

    def starter(node):
        yield from node.runtime.send(1, "hop", 8, body=31)
        yield from node.runtime.wait_for(lambda: received[0] >= 32)

    def idler(node):
        yield from node.runtime.wait_for(lambda: received[0] >= 32)

    done = machine.sim.process(starter(machine.node(0)))
    for node in list(machine)[1:]:
        machine.sim.process(idler(node))
    machine.sim.run(until=done)
    assert received[0] == 32   # the token went twice around the ring
