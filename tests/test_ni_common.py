"""Cross-NI behaviour tests: every NI delivers messages end-to-end,
declares a valid taxonomy, and resolves through the registry."""

import pytest

from repro import (
    ALL_NI_NAMES,
    COHERENT_NI_NAMES,
    DEFAULT_COSTS,
    DEFAULT_PARAMS,
    FIFO_NI_NAMES,
    Machine,
    make_ni,
    ni_class,
)
from repro.ni.taxonomy import TABLE2_COLUMNS

EVERY_NI = ALL_NI_NAMES + ("cm5-1cyc",)


def run_pingpong(ni_name, payload=56, rounds=5, params=None):
    machine = Machine(params or DEFAULT_PARAMS, DEFAULT_COSTS, ni_name,
                      num_nodes=2)
    state = {"pings": 0, "pongs": 0, "bodies": []}

    def on_ping(rt, msg):
        state["pings"] += 1
        state["bodies"].append(msg.body)
        yield from rt.send(0, "pong", payload, body=msg.body)

    def on_pong(rt, msg):
        state["pongs"] += 1

    machine.node(1).runtime.register_handler("ping", on_ping)
    machine.node(0).runtime.register_handler("pong", on_pong)

    def client(node):
        for i in range(rounds):
            yield from node.runtime.send(1, "ping", payload, body=f"m{i}")
            target = i + 1
            yield from node.runtime.wait_for(
                lambda: state["pongs"] >= target
            )

    def server(node):
        yield from node.runtime.wait_for(lambda: state["pings"] >= rounds)

    done = machine.sim.process(client(machine.node(0)))
    machine.sim.process(server(machine.node(1)))
    machine.sim.run(until=done)
    return machine, state


# ------------------------------------------------------------- delivery

@pytest.mark.parametrize("ni_name", EVERY_NI)
def test_end_to_end_delivery(ni_name):
    machine, state = run_pingpong(ni_name)
    assert state["pings"] == 5
    assert state["pongs"] == 5
    # Payload objects arrive intact and in order.
    assert state["bodies"] == [f"m{i}" for i in range(5)]


@pytest.mark.parametrize("ni_name", EVERY_NI)
@pytest.mark.parametrize("payload", [0, 8, 56, 120, 248])
def test_all_payload_sizes(ni_name, payload):
    machine, state = run_pingpong(ni_name, payload=payload, rounds=2)
    assert state["pongs"] == 2


@pytest.mark.parametrize("ni_name", EVERY_NI)
def test_tight_flow_control_still_delivers(ni_name):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine, state = run_pingpong(ni_name, rounds=4, params=params)
    assert state["pongs"] == 4


@pytest.mark.parametrize("ni_name", EVERY_NI)
def test_infinite_flow_control(ni_name):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=None)
    machine, state = run_pingpong(ni_name, rounds=3, params=params)
    assert state["pongs"] == 3
    for node in machine:
        assert node.ni.fcu.bounce_count == 0


# ------------------------------------------------------------- taxonomy

@pytest.mark.parametrize("ni_name", ALL_NI_NAMES)
def test_taxonomy_declared_and_valid(ni_name):
    cls = ni_class(ni_name)
    assert cls.taxonomy is not None
    cls.taxonomy.validate()
    row = cls.taxonomy.row()
    assert len(row) == len(TABLE2_COLUMNS)


def test_taxonomy_matches_table2_manager_column():
    # Table 2: who manages the transfer.
    assert ni_class("cm5").taxonomy.send_manager == "Processor"
    assert ni_class("udma").taxonomy.send_manager == "NI"
    assert ni_class("ap3000").taxonomy.send_manager == "Processor"
    assert ni_class("startjr").taxonomy.send_manager == "NI"
    assert ni_class("memchannel").taxonomy.send_manager == "Processor"
    assert ni_class("memchannel").taxonomy.recv_manager == "NI"
    assert ni_class("cni512q").taxonomy.recv_destination == "Processor Cache"
    assert ni_class("cni32qm").taxonomy.buffer_location == "NI Cache / Memory"


def test_taxonomy_processor_buffering_column():
    involved = {
        name: ni_class(name).taxonomy.processor_buffers
        for name in ALL_NI_NAMES
    }
    assert involved == {
        "cm5": True, "udma": True, "ap3000": True,
        "startjr": False, "memchannel": False,
        "cni512q": True, "cni32qm": False,
    }


# ------------------------------------------------------------- registry

def test_registry_rejects_unknown():
    with pytest.raises(ValueError, match="unknown NI"):
        ni_class("nonexistent")


def test_registry_families_cover_all():
    assert set(FIFO_NI_NAMES) | set(COHERENT_NI_NAMES) == set(ALL_NI_NAMES)
    assert len(ALL_NI_NAMES) == 7


def test_make_ni_constructs_on_node():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=2)
    assert machine.node(0).ni.ni_name == "cm5"
    assert machine.node(0).ni.node is machine.node(0)


def test_paper_names_unique():
    names = {ni_class(n).paper_name for n in ALL_NI_NAMES}
    assert len(names) == 7
