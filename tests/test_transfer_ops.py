"""The transfer-op vocabulary and the per-machine TransferEngine:
binomial-tree helpers, op construction, protocol selection,
gather/scatter cost attribution, and end-to-end op semantics."""

import pytest

from repro import DEFAULT_PARAMS, api
from repro.transfer import (
    Barrier,
    Broadcast,
    Get,
    Put,
    Reduce,
    Strided,
    TransferEngine,
    tree_children,
    tree_parent,
)


# -- binomial tree helpers ----------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 13, 16, 64])
def test_tree_is_a_spanning_tree(n):
    """Every non-root rank has exactly one parent that lists it as a
    child, and the parent is always closer to the root."""
    for rel in range(1, n):
        parent = tree_parent(rel)
        assert 0 <= parent < rel
        assert rel in tree_children(parent, n)
    reached = [0]
    frontier = [0]
    while frontier:
        nxt = []
        for rel in frontier:
            nxt.extend(tree_children(rel, n))
        reached.extend(nxt)
        frontier = nxt
    assert sorted(reached) == list(range(n))


def test_tree_children_bounded_by_low_bit():
    # rel=4 (low bit 4) may own rel+1, rel+2 but never rel+4.
    assert tree_children(4, 16) == [5, 6]
    assert tree_children(0, 16) == [1, 2, 4, 8]
    assert tree_children(0, 1) == []


# -- op construction ----------------------------------------------------


def test_ops_coerce_payload_specs():
    op = Broadcast(payload=("strided", 4, 64, 128))
    assert op.payload == Strided(4, 64, 128)
    assert op.moved_bytes(8) == 7 * 256
    assert Put(payload=512).moved_bytes(8) == 512
    assert Barrier().moved_bytes(8) == 0


def test_ops_validate_protocol():
    with pytest.raises(ValueError):
        Put(payload=64, protocol="psychic")
    with pytest.raises(ValueError):
        Get(payload=64, protocol="")
    assert Get(payload=64, protocol="rendezvous").protocol == "rendezvous"


def test_ops_are_frozen():
    op = Reduce(payload=128)
    with pytest.raises(AttributeError):
        op.root = 3


# -- engine wiring ------------------------------------------------------


def test_one_engine_per_machine():
    machine = api.build_machine(ni="cni32qm", num_nodes=2)
    engine = TransferEngine.for_machine(machine)
    assert TransferEngine.for_machine(machine) is engine
    assert machine.transfer is engine
    with pytest.raises(ValueError, match="already has"):
        TransferEngine(machine)


def test_engine_counters_are_mounted():
    result = api.run_collective("barrier", ni="cni32qm", nodes=4, rounds=3)
    snapshot = result.machine.metrics_snapshot()
    # 3 measured rounds + the harness's opening and closing barriers.
    assert snapshot["transfer.barriers"] == 5


# -- op semantics (via the api facade) ----------------------------------


def test_reduce_combines_node_ids():
    nodes = 5
    result = api.run_collective(
        "reduce", ni="cni32qm", nodes=nodes, rounds=2, payload=64,
    )
    results = result.machine.transfer.reduce_results
    expected = sum(range(nodes))
    assert len(results) == 2
    assert all(value == expected for value in results.values())


def test_reduce_supports_nonzero_root():
    result = api.run_collective(
        "reduce", ni="cm5", nodes=4, rounds=1, payload=64, root=2,
    )
    assert result.machine.transfer.reduce_results[1] == 6


def test_bcast_supports_nonzero_root():
    result = api.run_collective(
        "bcast", ni="udma", nodes=4, rounds=2, payload=256, root=3,
    )
    assert result.machine.transfer.counters["broadcasts"] == 2
    assert result.workload.extras["goodput_mb_s"] > 0


def test_put_switches_protocol_at_threshold():
    threshold = DEFAULT_PARAMS.rendezvous_threshold
    eager = api.run_collective(
        "put", ni="cni32qm", nodes=2, rounds=2, payload=threshold - 8,
    )
    counters = eager.machine.transfer.counters
    assert counters["eager_puts"] == 2 and counters["rendezvous_puts"] == 0
    rdvz = api.run_collective(
        "put", ni="cni32qm", nodes=2, rounds=2, payload=threshold,
    )
    counters = rdvz.machine.transfer.counters
    assert counters["rendezvous_puts"] == 2 and counters["eager_puts"] == 0
    # Explicit protocol overrides the size heuristic.
    forced = api.run_collective(
        "put", ni="cni32qm", nodes=2, rounds=1,
        payload=threshold * 4, protocol="eager",
    )
    assert forced.machine.transfer.counters["eager_puts"] == 1


def test_rendezvous_put_pays_the_handshake():
    eager = api.run_collective(
        "put", ni="cni32qm", nodes=2, rounds=4,
        payload=2048, protocol="eager",
    )
    rdvz = api.run_collective(
        "put", ni="cni32qm", nodes=2, rounds=4,
        payload=2048, protocol="rendezvous",
    )
    assert (rdvz.workload.extras["op_latency_us"]
            > eager.workload.extras["op_latency_us"])


def test_get_round_trips_and_counts_bytes():
    result = api.run_collective(
        "get", ni="cni32qm", nodes=2, rounds=3,
        payload=4096, protocol="rendezvous",
    )
    counters = result.machine.transfer.counters
    assert counters["gets"] == 3
    assert counters["rendezvous_gets"] == 3
    assert counters["get_bytes"] == 3 * 4096
    assert result.workload.extras["goodput_mb_s"] > 0


def test_zero_byte_put_completes():
    result = api.run_collective(
        "put", ni="cm5", nodes=2, rounds=2, payload=0,
    )
    assert result.machine.transfer.counters["puts"] == 2


# -- NI differentiation -------------------------------------------------


def test_strided_put_gather_attribution():
    """Coherent NIs walk the segment list; fifo NIs host-pack."""
    payload = ("strided", 16, 64, 256)
    offload = api.run_collective(
        "put", ni="cni32qm", nodes=2, rounds=1, payload=payload,
    )
    counters = offload.machine.transfer.counters
    assert counters["ni_gathers"] > 0 and counters["host_packs"] == 0
    host = api.run_collective(
        "put", ni="cm5", nodes=2, rounds=1, payload=payload,
    )
    counters = host.machine.transfer.counters
    assert counters["host_packs"] > 0 and counters["ni_gathers"] == 0


def test_memchannel_host_stages_the_send_side():
    """MemoryChannel receives coherently but its AP3000-style send side
    has no descriptor engine: strided sources are host-packed."""
    result = api.run_collective(
        "put", ni="memchannel", nodes=2, rounds=1,
        payload=("strided", 8, 64, 128),
    )
    assert result.machine.transfer.counters["host_packs"] > 0


def test_barrier_offload_beats_host_path():
    fifo = api.run_collective("barrier", ni="cm5", nodes=8, rounds=5)
    cni = api.run_collective("barrier", ni="cni32qm", nodes=8, rounds=5)
    assert (cni.workload.extras["op_latency_us"]
            < fifo.workload.extras["op_latency_us"])
