"""Unit tests for the Gate broadcast primitive and TokenPool.cancel."""

from repro.sim import Gate, Simulator, TokenPool


def test_gate_wakes_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woken = []

    def waiter(tag):
        yield gate.wait()
        woken.append((tag, sim.now))

    def pulser():
        yield sim.timeout(10)
        count = gate.pulse("hello")
        return count

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    p = sim.process(pulser())
    sim.run()
    assert sorted(tag for tag, _ in woken) == ["a", "b"]
    assert all(t == 10 for _, t in woken)
    assert p.value == 2


def test_gate_pulse_with_no_waiters_is_harmless():
    sim = Simulator()
    gate = Gate(sim)
    assert gate.pulse() == 0
    assert gate.waiting == 0


def test_gate_wait_after_pulse_needs_new_pulse():
    # Pulses are edges, not levels: a late waiter misses earlier ones.
    sim = Simulator()
    gate = Gate(sim)
    gate.pulse()
    woken = []

    def late_waiter():
        yield gate.wait()
        woken.append(sim.now)

    def second_pulse():
        yield sim.timeout(7)
        gate.pulse()

    sim.process(late_waiter())
    sim.process(second_pulse())
    sim.run()
    assert woken == [7]


def test_gate_waiting_count():
    sim = Simulator()
    gate = Gate(sim)
    gate.wait()
    gate.wait()
    assert gate.waiting == 2
    gate.pulse()
    assert gate.waiting == 0


def test_token_pool_cancel_pending_acquire():
    sim = Simulator()
    pool = TokenPool(sim, 1)
    assert pool.try_acquire()
    pending = pool.acquire()
    assert not pending.triggered
    pool.cancel(pending)
    pool.release()
    # The cancelled waiter must not have consumed the freed token.
    assert pool.available == 1
    assert not pending.triggered


def test_token_pool_cancel_granted_is_noop():
    sim = Simulator()
    pool = TokenPool(sim, 2)
    granted = pool.acquire()
    assert granted.triggered
    pool.cancel(granted)   # no error, no state change
    assert pool.in_use == 1
