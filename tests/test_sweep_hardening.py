"""Tests for the self-healing sweep harness: worker-crash recovery,
per-job timeouts, partial-failure reporting, and corrupt-cache-entry
handling.

The crashy cell functions live at module level so the forked pool
workers can resolve them by qualified name; they coordinate with the
parent through a sentinel file whose path rides in the environment
(fork inherits it).
"""

import json
import os
import time

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.experiments.cache import ResultCache, job_key
from repro.experiments.parallel import (
    Job,
    SweepExecutor,
    SweepFailure,
    freeze_kwargs,
    run_cell,
)
from repro.obs.export import build_manifest, validate_manifest

SENTINEL_ENV = "REPRO_TEST_CRASH_SENTINEL"


def _jobs(n=4):
    return [
        Job(label=f"hardening:pp:{i}:{'victim' if i == 1 else 'ok'}",
            ni="cm5", workload="pingpong",
            params=DEFAULT_PARAMS, costs=DEFAULT_COSTS,
            kwargs=freeze_kwargs(dict(payload_bytes=8, rounds=4, warmup=1)))
        for i in range(n)
    ]


def _crash_victim_once(job):
    """os._exit on the victim cell the first time it runs — simulates
    a worker process dying mid-cell (segfault / OOM-kill)."""
    sentinel = os.environ[SENTINEL_ENV]
    if job.label.endswith("victim") and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(3)
    return run_cell(job)


def _crash_always(job):
    os._exit(4)


def _raise_always(job):
    raise ValueError(f"cell exploded: {job.label}")


def _hang_victim_once(job):
    sentinel = os.environ[SENTINEL_ENV]
    if job.label.endswith("victim") and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(60)
    return run_cell(job)


# ------------------------------------------------------ crash recovery

def test_killed_worker_cells_are_reexecuted(tmp_path, monkeypatch):
    monkeypatch.setenv(SENTINEL_ENV, str(tmp_path / "crashed"))
    jobs = _jobs()
    executor = SweepExecutor(jobs=2, cache=None, cell_fn=_crash_victim_once)
    results = executor.map(jobs)
    # The sweep completed and every cell matches an undisturbed run.
    assert [r.label for r in results] == [j.label for j in jobs]
    assert results == [run_cell(j) for j in jobs]
    # The victim's re-execution is on the record.
    victim = jobs[1].label
    assert executor.job_events[victim]["attempts"] >= 2
    assert not executor.failures


def test_permanent_crash_raises_sweep_failure(monkeypatch, tmp_path):
    monkeypatch.setenv(SENTINEL_ENV, str(tmp_path / "unused"))
    jobs = _jobs(2)
    executor = SweepExecutor(jobs=2, cache=None, cell_fn=_crash_always,
                             retry_limit=1)
    with pytest.raises(SweepFailure) as exc_info:
        executor.map(jobs)
    failed = {f["label"] for f in exc_info.value.failures}
    assert failed == {j.label for j in jobs}
    assert all(f["attempts"] >= 2 for f in exc_info.value.failures)
    assert executor.failures == exc_info.value.failures


def test_cell_exception_is_retried_then_reported(monkeypatch, tmp_path):
    monkeypatch.setenv(SENTINEL_ENV, str(tmp_path / "unused"))
    jobs = _jobs(2)
    executor = SweepExecutor(jobs=2, cache=None, cell_fn=_raise_always,
                             retry_limit=1)
    with pytest.raises(SweepFailure) as exc_info:
        executor.map(jobs)
    assert all("cell exploded" in f["error"]
               for f in exc_info.value.failures)


def test_survivors_kept_when_some_cells_fail(monkeypatch, tmp_path):
    """A partial sweep preserves every cell that did compute."""
    monkeypatch.setenv(SENTINEL_ENV, str(tmp_path / "crashed"))
    jobs = _jobs()

    executor = SweepExecutor(jobs=2, cache=None, cell_fn=_crash_if_victim,
                             retry_limit=1)
    with pytest.raises(SweepFailure) as exc_info:
        executor.map(jobs)
    assert {f["label"] for f in exc_info.value.failures} == {jobs[1].label}
    survived = {job.label for job, _result, _cached in executor.completed}
    assert survived == {j.label for i, j in enumerate(jobs) if i != 1}


def _crash_if_victim(job):
    if job.label.endswith("victim"):
        os._exit(5)
    return run_cell(job)


def test_job_timeout_recovers(monkeypatch, tmp_path):
    monkeypatch.setenv(SENTINEL_ENV, str(tmp_path / "hung"))
    jobs = _jobs()
    executor = SweepExecutor(jobs=2, cache=None, cell_fn=_hang_victim_once,
                             job_timeout_s=3)
    results = executor.map(jobs)
    assert [r.label for r in results] == [j.label for j in jobs]
    victim = jobs[1].label
    assert "timeout" in executor.job_events[victim]["errors"][0]


def test_serial_path_ignores_pool_machinery():
    jobs = _jobs(2)
    executor = SweepExecutor(jobs=1, cache=None)
    results = executor.map(jobs)
    assert results == [run_cell(j) for j in jobs]
    assert executor.job_events == {}


# ------------------------------------------------- corrupt cache entries

def _cache_probe(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(str(tmp_path / "cache"))
    cache.put(job, run_cell(job))
    path = cache._path(job_key(job))
    return job, cache, path


def test_truncated_cache_entry_is_a_miss(tmp_path):
    job, cache, path = _cache_probe(tmp_path)
    blob = open(path).read()
    with open(path, "w") as fh:
        fh.write(blob[: len(blob) // 2])
    assert cache.get(job) is None
    assert cache.corrupt_entries == 1
    assert cache.misses == 1
    # The recomputed cell overwrites the bad entry and hits again.
    cache.put(job, run_cell(job))
    assert cache.get(job) is not None
    assert cache.hits == 1


def test_old_schema_cache_entry_is_a_miss(tmp_path):
    job, cache, path = _cache_probe(tmp_path)
    data = json.load(open(path))
    data["schema"] = 1
    with open(path, "w") as fh:
        json.dump(data, fh)
    assert cache.get(job) is None
    assert cache.corrupt_entries == 1


def test_garbage_cache_entry_is_a_miss(tmp_path):
    job, cache, path = _cache_probe(tmp_path)
    with open(path, "w") as fh:
        fh.write("{not json at all")
    assert cache.get(job) is None
    assert cache.corrupt_entries == 1


def test_missing_cache_entry_is_a_plain_miss(tmp_path):
    job = _jobs(1)[0]
    cache = ResultCache(str(tmp_path / "cache"))
    assert cache.get(job) is None
    assert cache.misses == 1
    assert cache.corrupt_entries == 0


# ------------------------------------------------------ manifest status

def _manifest(**overrides):
    kwargs = dict(
        experiments=["figure1"], quick=True, jobs=2,
        cells=[{"label": "x", "elapsed_ns": 10, "cached": False}],
        wall_time_s=1.0, cache_enabled=False, cache_hits=0,
        cache_misses=0, outputs={"json": None},
    )
    kwargs.update(overrides)
    return build_manifest(**kwargs)


def test_manifest_partial_status_validates():
    manifest = _manifest(
        status="partial",
        cells=[{"label": "x", "elapsed_ns": 10, "cached": False,
                "attempts": 2, "reexecuted": True},
               {"label": "y", "failed": True, "attempts": 2,
                "error": "worker crashed"}],
        cache_corrupt_entries=3,
    )
    assert validate_manifest(manifest) == []
    assert manifest["status"] == "partial"
    assert manifest["cache"]["corrupt_entries"] == 3


def test_manifest_rejects_unknown_status():
    with pytest.raises(ValueError):
        _manifest(status="exploded")


def test_validate_manifest_flags_bad_status():
    manifest = _manifest()
    manifest["status"] = "wrong"
    assert any("status" in p for p in validate_manifest(manifest))
