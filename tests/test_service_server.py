"""The job service end to end: leases, retries, fairness, quarantine,
crash recovery, the API facade, and the retry-policy config surface.

The server runs on a background thread with a real socket; the
blocking :class:`ServiceClient` plays both the submitting user and
(manually) the workers, which lets the tests drive failure
interleavings — expired leases, duplicate completions, poison cells —
deterministically.  One test uses a real worker subprocess; the full
kill -9 chaos story lives in ``scripts/check_service.py``.
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.experiments.parallel import (
    DEFAULT_RETRY_POLICY,
    Job,
    RetryPolicy,
    SweepExecutor,
    freeze_kwargs,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.fairness import WeightedRoundRobin
from repro.service.lease import LeaseManager
from repro.service.server import SweepServer


# --------------------------------------------------- unit: fairness


def test_wrr_smooth_3_to_1_interleaving():
    wrr = WeightedRoundRobin()
    picks = [wrr.pick({"a": 3, "b": 1}) for _ in range(8)]
    assert picks == ["a", "a", "b", "a", "a", "a", "b", "a"]


def test_wrr_equal_weights_alternate():
    wrr = WeightedRoundRobin()
    picks = [wrr.pick({"x": 1, "y": 1}) for _ in range(6)]
    assert picks.count("x") == picks.count("y") == 3
    assert picks[:2] != picks[1:3] or picks[0] != picks[1]


def test_wrr_never_starves_and_clamps_bad_weights():
    wrr = WeightedRoundRobin()
    picks = [wrr.pick({"big": 100, "small": 0}) for _ in range(101)]
    assert "small" in picks  # weight clamped to 1, still scheduled
    assert wrr.pick({}) is None


def test_wrr_absent_tenant_resumes_with_priority():
    wrr = WeightedRoundRobin()
    for _ in range(4):
        assert wrr.pick({"a": 1}) == "a"
    # b arrives with zero history; smooth WRR gives it the next slot
    # eventually without letting it monopolize.
    picks = [wrr.pick({"a": 1, "b": 1}) for _ in range(4)]
    assert picks.count("b") == 2


# ----------------------------------------------------- unit: leases


def test_lease_grant_renew_expire_with_fake_clock():
    now = [0.0]
    leases = LeaseManager(timeout_s=10.0, clock=lambda: now[0])
    lease = leases.grant("s", "cell", "w0")
    assert leases.find(lease.lease_id) is lease
    now[0] = 8.0
    assert leases.renew(lease.lease_id)  # extends to t=18
    now[0] = 15.0
    assert leases.expire() == []
    now[0] = 18.0
    assert [l.lease_id for l in leases.expire()] == [lease.lease_id]
    assert leases.expired == 1 and len(leases) == 0
    assert not leases.renew(lease.lease_id)  # gone


def test_lease_leased_labels_groups_by_sweep():
    leases = LeaseManager(timeout_s=5.0)
    leases.grant("s1", "a", "w0")
    leases.grant("s1", "b", "w1")
    leases.grant("s2", "a", "w2")
    grouped = leases.leased_labels()
    assert grouped == {"s1": {"a", "b"}, "s2": {"a"}}


def test_lease_timeout_must_be_positive():
    with pytest.raises(ValueError):
        LeaseManager(timeout_s=0)


# ------------------------------------------------ unit: retry policy


def test_retry_policy_validate_rejects_bad_fields():
    for bad in (
        {"retry_limit": -1},
        {"job_timeout_s": 0.0},
        {"quarantine_attempts": 0},
        {"backoff_base_s": 0.0},
        {"backoff_factor": 0},
        {"backoff_cap_s": 0.001},  # below base
    ):
        with pytest.raises(ValueError):
            DEFAULT_RETRY_POLICY.replace(**bad).validate()


def test_retry_policy_backoff_matches_reliability_ladder():
    """The service requeue ladder IS the retransmit ladder: capped
    exponential with the same exponent discipline."""
    policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2,
                         backoff_cap_s=0.5)
    delays = [policy.backoff_s(n) for n in range(5)]
    assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])
    assert delays == sorted(delays)  # monotone non-decreasing


def test_executor_accepts_policy_and_legacy_kwargs_overlay():
    policy = RetryPolicy(retry_limit=5, job_timeout_s=9.0)
    executor = SweepExecutor(jobs=1, retry_policy=policy)
    assert executor.retry_policy == policy
    assert executor.retry_limit == 5 and executor.job_timeout_s == 9.0
    # Legacy kwargs overlay onto the policy, not past it.
    executor = SweepExecutor(jobs=1, retry_policy=policy, retry_limit=2)
    assert executor.retry_policy.retry_limit == 2
    assert executor.retry_policy.job_timeout_s == 9.0


def test_retry_policy_jsonable_roundtrip():
    policy = RetryPolicy(retry_limit=4, job_timeout_s=7.5,
                         quarantine_attempts=2, backoff_base_s=0.01,
                         backoff_factor=3, backoff_cap_s=1.0)
    assert RetryPolicy.from_jsonable(policy.to_jsonable()) == policy
    assert RetryPolicy.from_jsonable({}) == RetryPolicy()


# ------------------------------------------- server thread fixture


class ServiceThread:
    """A SweepServer on its own thread + event loop, for blocking
    clients."""

    def __init__(self, root, **kwargs):
        self.root = str(root)
        self.kwargs = dict(kwargs)
        self.kwargs.setdefault("wal_fsync", False)
        self.server = None
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.server = SweepServer(self.root, **self.kwargs)
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()

    def start(self) -> ServiceClient:
        self._thread.start()
        assert self._ready.wait(15), "server did not come up"
        return ServiceClient.from_dir(self.root)

    def stop(self):
        if self.loop is not None and self.server is not None:
            self.loop.call_soon_threadsafe(self.server.stop)
        self._thread.join(15)
        assert not self._thread.is_alive()


def _toy_cells(n, prefix="cell"):
    """Submittable cells with opaque specs (never executed)."""
    return [{"label": f"{prefix}{i}", "spec": {"toy": i}}
            for i in range(n)]


def _tiny_job(label, **over):
    kwargs = {"payload_bytes": 32, "rounds": 2}
    kwargs.update(over)
    return Job(label=label, ni="cni32qm", workload="pingpong",
               params=DEFAULT_PARAMS, costs=DEFAULT_COSTS,
               kwargs=freeze_kwargs(kwargs), collect_digest=True)


# ---------------------------------------------------- e2e: happy path


def test_submit_lease_complete_manifest_cycle(tmp_path):
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        response = client.submit("s1", _toy_cells(2), tenant="t")
        assert response == {"sweep": "s1", "accepted": True, "cells": 2}
        # Idempotent resubmission: acknowledged, nothing duplicated.
        again = client.submit("s1", _toy_cells(2), tenant="t")
        assert again["accepted"] is False and again["cells"] == 2
        for _ in range(2):
            grant = client.lease()
            assert grant["sweep"] == "s1"
            client.complete(grant["lease"], sweep="s1",
                            label=grant["label"], ok=True,
                            key=f"k-{grant['label']}", elapsed_ns=7)
        assert client.lease()["empty"] is True
        status = client.status("s1")
        assert status["finished"] and status["clean"]
        result = client.result("s1")
        assert result["manifest"] and os.path.exists(result["manifest"])
        manifest = json.load(open(result["manifest"]))
        assert manifest["status"] == "complete"
        assert manifest["retry"] == DEFAULT_RETRY_POLICY.to_jsonable()
        assert {c["label"] for c in manifest["cells"]} == \
            {"cell0", "cell1"}
        snapshot = client.metrics()
        assert snapshot["service.completions"] == 2
        assert snapshot["service.duplicate_completions"] == 0
    finally:
        service.stop()


def test_duplicate_completion_is_idempotent_noop(tmp_path):
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        client.submit("s", _toy_cells(1))
        grant = client.lease()
        first = client.complete(grant["lease"], sweep="s",
                                label=grant["label"], ok=True, key="k")
        assert first["applied"] is True
        # A slow duplicate (expired lease id, same work) must not
        # double-complete.
        second = client.complete(grant["lease"], sweep="s",
                                 label=grant["label"], ok=True, key="k")
        assert second == {"applied": False, "duplicate": True}
        assert client.metrics()["service.duplicate_completions"] == 1
        assert client.status("s")["done"] == 1
    finally:
        service.stop()


def test_unknown_routes_and_bad_bodies_are_4xx(tmp_path):
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/submit", {"sweep": "s",
                                                "cells": []})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.status("ghost")
        assert err.value.status == 404
    finally:
        service.stop()


# ------------------------------------------- e2e: leases and retries


def test_expired_lease_requeues_cell(tmp_path):
    service = ServiceThread(
        tmp_path, lease_timeout_s=0.2,
        retry_policy=RetryPolicy(quarantine_attempts=5,
                                 backoff_base_s=0.01,
                                 backoff_cap_s=0.02),
    )
    client = service.start()
    try:
        client.submit("s", _toy_cells(1))
        grant = client.lease()
        assert grant["attempts"] == 0
        # Walk away (simulated worker kill): no heartbeat, no complete.
        deadline = time.monotonic() + 10
        regrant = {"empty": True}
        while regrant.get("empty") and time.monotonic() < deadline:
            time.sleep(0.05)
            regrant = client.lease()
        assert regrant["label"] == grant["label"]
        assert regrant["attempts"] == 1  # the expiry was recorded
        assert client.metrics()["service.lease_expiries"] >= 1
        client.complete(regrant["lease"], sweep="s",
                        label=regrant["label"], ok=True, key="k")
        assert client.status("s")["clean"]
    finally:
        service.stop()


def test_heartbeat_keeps_lease_alive(tmp_path):
    service = ServiceThread(tmp_path, lease_timeout_s=0.3)
    client = service.start()
    try:
        client.submit("s", _toy_cells(1))
        grant = client.lease()
        for _ in range(5):
            time.sleep(0.1)
            assert client.heartbeat(grant["lease"])["ok"]
        # 0.5s > timeout, but heartbeats kept it: still leased, not
        # re-grantable.
        assert client.lease()["empty"] is True
        assert client.metrics()["service.lease_expiries"] == 0
    finally:
        service.stop()


def test_failed_attempts_backoff_then_quarantine_partial_manifest(tmp_path):
    policy = RetryPolicy(quarantine_attempts=2, backoff_base_s=0.01,
                         backoff_factor=2, backoff_cap_s=0.05)
    service = ServiceThread(tmp_path, retry_policy=policy)
    client = service.start()
    try:
        client.submit("s", _toy_cells(2))
        # Fail cell0 twice; complete anything else normally.
        fails = 0
        deadline = time.monotonic() + 20
        while fails < 2 and time.monotonic() < deadline:
            grant = client.lease()
            if grant.get("empty"):
                time.sleep(0.02)  # backoff gate still closed
                continue
            if grant["label"] == "cell0":
                assert grant["attempts"] == fails
                client.complete(grant["lease"], sweep="s",
                                label="cell0", ok=False,
                                error=f"boom {fails}",
                                kind="worker_error")
                fails += 1
            else:
                client.complete(grant["lease"], sweep="s",
                                label=grant["label"], ok=True, key="k1")
        while not client.status("s")["finished"] and \
                time.monotonic() < deadline:
            grant = client.lease()
            if grant.get("empty"):
                time.sleep(0.02)
                continue
            client.complete(grant["lease"], sweep="s",
                            label=grant["label"], ok=True, key="k1")
        status = client.status("s")
        assert status["quarantined"] == 1 and status["finished"]
        assert not status["clean"]
        result = client.result("s")
        manifest = json.load(open(result["manifest"]))
        assert manifest["status"] == "partial"
        failed = [c for c in manifest["cells"] if c.get("failed")]
        assert [c["label"] for c in failed] == ["cell0"]
        assert failed[0]["attempts"] == 2
        # The quarantine report landed on the cell state and on disk.
        cell = [c for c in result["cells"] if c["label"] == "cell0"][0]
        assert cell["status"] == "quarantined"
        assert cell["report"]["errors"] == ["boom 0", "boom 1"]
        incident = cell["report"]["incident"]
        assert incident and os.path.exists(incident)
        payload = json.load(open(incident))
        assert payload["label"] == "cell0" and payload["attempts"] == 2
    finally:
        service.stop()


def test_fairness_interleaves_tenants_by_weight(tmp_path):
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        client.submit("alice-sweep", _toy_cells(8, "a"),
                      tenant="alice", weight=3)
        client.submit("bob-sweep", _toy_cells(8, "b"),
                      tenant="bob", weight=1)
        order = []
        for _ in range(8):
            grant = client.lease()
            order.append(grant["sweep"])
            client.complete(grant["lease"], sweep=grant["sweep"],
                            label=grant["label"], ok=True, key="k")
        # 3:1 split, and bob is interleaved, not tail-queued.
        assert order.count("alice-sweep") == 6
        assert order.count("bob-sweep") == 2
        assert "bob-sweep" in order[:4]
    finally:
        service.stop()


# ------------------------------------------ e2e: crash and recovery


def test_server_restart_recovers_queue_and_voids_leases(tmp_path):
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        client.submit("s", _toy_cells(3))
        grant = client.lease()
        client.complete(grant["lease"], sweep="s",
                        label=grant["label"], ok=True, key="k")
        client.lease()  # a second lease we will "crash" holding
    finally:
        service.stop()  # hard stop: no drain, lease still out
    reborn = ServiceThread(tmp_path)
    client = reborn.start()
    try:
        status = client.status("s")
        assert status["done"] == 1 and status["pending"] == 2
        # Both pending cells (including the one leased at crash time)
        # are grantable immediately: leases are not durable state.
        labels = set()
        for _ in range(2):
            regrant = client.lease()
            labels.add(regrant["label"])
            client.complete(regrant["lease"], sweep="s",
                            label=regrant["label"], ok=True, key="k")
        assert len(labels) == 2
        assert client.status("s")["clean"]
        assert os.path.exists(client.result("s")["manifest"])
    finally:
        reborn.stop()


def test_finished_sweep_manifest_written_on_restart(tmp_path):
    """Crash between the last completion and the manifest write: the
    reborn server notices the finished sweep during recovery and
    writes the manifest."""
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        client.submit("s", _toy_cells(1))
        grant = client.lease()
        client.complete(grant["lease"], sweep="s",
                        label=grant["label"], ok=True, key="k")
        manifest = client.result("s")["manifest"]
    finally:
        service.stop()
    os.unlink(manifest)  # simulate dying before the write landed
    reborn = ServiceThread(tmp_path)
    client = reborn.start()
    try:
        assert os.path.exists(client.result("s")["manifest"])
    finally:
        reborn.stop()


# ------------------------------- e2e: real workers + the api facade


def test_real_worker_subprocess_runs_cells(tmp_path):
    service = ServiceThread(tmp_path, workers=1)
    client = service.start()
    try:
        jobs = [_tiny_job(f"svc:{i}") for i in range(2)]
        client.submit("real", jobs, tenant="it")
        status = client.wait("real", timeout_s=120)
        assert status["clean"]
        result = client.result("real")
        keys = {c["key"] for c in result["cells"]}
        assert len(keys) == 2 and None not in keys
        # Exactly-once effects: the results are in the shared cache
        # under those content keys.
        from repro.experiments.cache import ResultCache, job_key

        cache = ResultCache(result["cache_dir"])
        for job in jobs:
            assert job_key(job) in keys
            cached = cache.get(job)
            assert cached is not None and cached.digest is not None
    finally:
        service.stop()


def test_api_facade_submit_status_result(tmp_path):
    from repro import api

    service = ServiceThread(tmp_path, workers=1)
    service.start()
    try:
        root = str(tmp_path)
        jobs = [_tiny_job("api:0")]
        ack = api.submit_sweep(root, "api-sweep", jobs)
        assert ack["accepted"] and ack["cells"] == 1
        final = api.submit_sweep(root, "api-sweep", jobs, wait=True,
                                 timeout_s=120)
        assert final["finished"] and final["clean"]
        assert api.sweep_status(root)["sweeps"] == 1
        result = api.sweep_result(root, "api-sweep")
        assert result["cells"][0]["status"] == "done"
    finally:
        service.stop()


def test_drain_refuses_new_leases_and_serves_status(tmp_path):
    service = ServiceThread(tmp_path)
    client = service.start()
    try:
        client.submit("s", _toy_cells(1))
        assert client.drain()["draining"] is True
        grant = client.lease()
        assert grant == {"empty": True, "drain": True}
        assert client.status()["draining"] is True
    finally:
        service.stop()


# ----------------------------- quarantine produces a replayable rprc


def test_quarantined_poison_cell_dumps_replayable_capture(tmp_path):
    """A deterministically failing cell (retry budget exhausted under
    100% drop) quarantines with an incident capture that
    repro.replay can re-execute bit-exactly."""
    from repro.experiments.cache import ResultCache, job_key
    from repro.experiments.parallel import run_cell
    from repro.faults.config import FaultConfig
    from repro.replay import job_from_capture, read_capture

    poison = Job(
        label="poison:pingpong",
        ni="cni32qm", workload="pingpong",
        params=DEFAULT_PARAMS.replace(faults=FaultConfig(
            seed=1, drop_prob=1.0, reliable=True,
            retry_timeout_ns=500, retry_timeout_cap_ns=2000,
            retry_budget=2, watchdog=True, watchdog_quiet_ns=60_000,
        )),
        costs=DEFAULT_COSTS,
        kwargs=freeze_kwargs({"payload_bytes": 32, "rounds": 2}),
        collect_digest=True,
    )
    policy = RetryPolicy(quarantine_attempts=1, backoff_base_s=0.01,
                         backoff_cap_s=0.02)
    service = ServiceThread(tmp_path, retry_policy=policy)
    client = service.start()
    try:
        client.submit("poison", [poison])
        grant = client.lease()
        # Worker-style execution: run, cache, report the failure.
        job = poison
        result = run_cell(job)
        assert result.extras.get("delivery_failure")
        cache = ResultCache(os.path.join(str(tmp_path), "cache"))
        cache.put(job, result)
        client.complete(grant["lease"], sweep="poison",
                        label=job.label, ok=False, key=job_key(job),
                        kind="delivery_failure",
                        error="delivery failure: no_progress")
        cell = client.result("poison")["cells"][0]
        assert cell["status"] == "quarantined"
        capture_path = cell["report"]["capture"]
        assert capture_path and capture_path.endswith(".rprc")
        capture = read_capture(capture_path)
        assert capture["label"] == job.label
        rebuilt = job_from_capture(capture)
        assert rebuilt.params.faults.drop_prob == 1.0
        # Replaying the incident reproduces the failure bit-exactly.
        from repro import api

        report = api.replay(capture_path, strict=False)
        assert report.ok, report.summary()
        incident = json.load(open(cell["report"]["incident"]))
        assert incident["delivery_failure"]["reason"]
    finally:
        service.stop()
