"""Unit tests for the cost-model primitives and machine re-export."""

import pytest

from repro.analysis import CostModel
from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS


def model():
    return CostModel(DEFAULT_PARAMS, DEFAULT_COSTS)


def test_uncached_access_arithmetic():
    # 16 (address) + 60 (NI SRAM) + 4 (one 32B beat) = 80 ns.
    assert model().uncached_access_ns(8) == 80
    # 64B block op: 16 + 60 + 8 = 84.
    assert model().block_op_ns(64) == 84


def test_miss_arithmetic():
    # 16 + 120 + 8 + 1 = 145 from memory; 16 + 60 + 8 + 1 = 85 from
    # the NI cache.
    assert model().miss_from_memory_ns() == 145
    assert model().miss_from_ni_cache_ns() == 85


def test_engine_fetch_arithmetic():
    # 16 + 30 (cache-to-cache supply) + 8 = 54.
    assert model().engine_fetch_ns() == 54


def test_upgrade_arithmetic():
    assert model().upgrade_store_ns() == 17


def test_prediction_monotone_in_payload():
    m = model()
    for ni_name in ("cm5", "ap3000", "startjr", "cni32qm"):
        small = m.predict(ni_name, 8)
        large = m.predict(ni_name, 248)
        assert large.o_send_ns >= small.o_send_ns
        assert large.o_recv_ns >= small.o_recv_ns


def test_one_way_floor_includes_network():
    prediction = model().predict("cni32qm", 8)
    assert prediction.one_way_floor_ns >= prediction.o_send_ns + 40


def test_machine_reexport():
    from repro.machine import Machine as M1
    from repro.node import Machine as M2

    assert M1 is M2
