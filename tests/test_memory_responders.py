"""Unit tests for the memory responders."""

from repro.config import DEFAULT_PARAMS
from repro.memory import DeviceMemory, MainMemory


def test_main_memory_latency_matches_params():
    memory = MainMemory(DEFAULT_PARAMS)
    supplier = memory.supplier()
    assert supplier.latency_ns == 120
    assert supplier.kind == "memory"
    assert memory.counters["supplies"] == 1


def test_device_memory_defaults_to_ni_sram():
    device = DeviceMemory(DEFAULT_PARAMS)
    assert device.supplier().latency_ns == 60
    assert device.supplier().kind == "ni"


def test_device_memory_dram_override():
    # CNI_512Q's footnote: big NI queues are DRAM-speed.
    device = DeviceMemory(DEFAULT_PARAMS,
                          access_ns=DEFAULT_PARAMS.mem_access_ns)
    assert device.supplier().latency_ns == 120


def test_supplier_name_propagates():
    memory = MainMemory(DEFAULT_PARAMS, name="mem7")
    assert memory.supplier().name == "mem7"
    assert "mem7" in repr(memory)
