"""Per-message lifecycle spans: recorder semantics, the
phases-partition-latency invariant, Perfetto export, parallel
determinism, and the paper-ordering acceptance check."""

import json
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.obs import PHASES, Span, SpanRecorder, export_perfetto
from repro.obs.spans import perfetto_events


class FakeSim:
    def __init__(self):
        self.now = 0


def _msg(src=0, dst=1, size=64, handler="h"):
    return SimpleNamespace(src=src, dst=dst, size=size, handler=handler,
                           span_id=None)


# -- recorder semantics ------------------------------------------------


def test_begin_assigns_sequential_span_ids():
    rec = SpanRecorder(FakeSim(), enabled=True)
    a, b = _msg(), _msg()
    rec.begin(a)
    rec.begin(b)
    assert (a.span_id, b.span_id) == (0, 1)
    assert len(rec) == 2
    assert rec.spans[0].current_phase == "send_overhead"


def test_mark_collapses_repeats_and_ignores_untracked():
    sim = FakeSim()
    rec = SpanRecorder(sim, enabled=True)
    msg = _msg()
    rec.begin(msg)
    sim.now = 10
    rec.mark(msg, "wire")
    sim.now = 20
    rec.mark(msg, "wire")  # same phase: no new transition
    assert rec.spans[0].transitions == [("send_overhead", 0), ("wire", 10)]
    ack = _msg()  # span_id None: every call is a no-op
    rec.mark(ack, "wire")
    rec.annotate(ack, "bounces")
    rec.end(ack)
    assert len(rec) == 1


def test_end_closes_once_and_late_marks_are_ignored():
    sim = FakeSim()
    rec = SpanRecorder(sim, enabled=True)
    msg = _msg()
    rec.begin(msg)
    sim.now = 30
    rec.end(msg)
    sim.now = 99
    rec.end(msg)          # second end keeps the first timestamp
    rec.mark(msg, "wire")  # marks after close are dropped
    span = rec.spans[0]
    assert span.end_ns == 30
    assert span.transitions == [("send_overhead", 0)]
    assert span.latency_ns() == 30
    assert rec.open_count == 0
    assert rec.completed() == [span]


def test_annotations_accumulate():
    rec = SpanRecorder(FakeSim(), enabled=True)
    msg = _msg()
    rec.begin(msg)
    rec.annotate(msg, "bounces")
    rec.annotate(msg, "bounces", 2)
    rec.annotate(msg, "word_pushes", 8)
    assert rec.spans[0].annotations == {"bounces": 3, "word_pushes": 8}


def test_open_span_refuses_phase_durations():
    rec = SpanRecorder(FakeSim(), enabled=True)
    msg = _msg()
    rec.begin(msg)
    with pytest.raises(ValueError):
        rec.spans[0].phase_durations()
    assert rec.spans[0].latency_ns() is None


def test_span_jsonable_round_trip():
    sim = FakeSim()
    rec = SpanRecorder(sim, enabled=True)
    msg = _msg(src=2, dst=5, size=128, handler="pong")
    rec.begin(msg)
    sim.now = 7
    rec.mark(msg, "wire")
    sim.now = 19
    rec.mark(msg, "recv_buffering")
    rec.annotate(msg, "bounces", 1)
    sim.now = 40
    rec.end(msg)
    data = json.loads(json.dumps(rec.to_jsonable()[0]))
    assert data["latency_ns"] == 40
    assert sum(data["phases"].values()) == data["latency_ns"]
    back = Span.from_jsonable(data)
    assert back.transitions == rec.spans[0].transitions
    assert back.phase_durations() == rec.spans[0].phase_durations()
    assert back.annotations == {"bounces": 1}


# -- the partition invariant, synthetic (hypothesis) -------------------


@given(
    steps=st.lists(
        st.tuples(st.sampled_from(PHASES), st.integers(0, 50)),
        max_size=12,
    ),
    tail=st.integers(0, 50),
)
def test_random_mark_sequences_partition_latency(steps, tail):
    """Whatever mark sequence the hooks produce, phase durations
    partition [begin, end]: non-negative, summing to latency, with
    time-ordered transitions."""
    sim = FakeSim()
    rec = SpanRecorder(sim, enabled=True)
    msg = _msg()
    rec.begin(msg)
    for phase, dt in steps:
        sim.now += dt
        rec.mark(msg, phase)
    sim.now += tail
    rec.end(msg)
    span = rec.spans[0]
    durations = span.phase_durations()
    assert all(v >= 0 for v in durations.values())
    assert sum(durations.values()) == span.latency_ns()
    times = [t for _p, t in span.transitions]
    assert times == sorted(times)
    # Consecutive transitions never repeat a phase (marks collapse).
    phases = [p for p, _t in span.transitions]
    assert all(a != b for a, b in zip(phases, phases[1:]))


# -- the partition invariant, simulated (ni2w / udma / cni32qm) --------


@settings(max_examples=6, deadline=None)
@given(
    ni=st.sampled_from(["cm5", "udma", "cni32qm"]),
    payload=st.sampled_from([16, 96, 248]),
    rounds=st.integers(2, 5),
)
def test_simulated_spans_partition_latency(ni, payload, rounds):
    result = api.run_workload(
        ni=ni, workload="pingpong", payload_bytes=payload,
        rounds=rounds, spans=True,
    )
    spans = result.spans
    assert len(spans) == 2 * (rounds + 10)  # ping+pong, incl. warmup
    assert result.machine.spans.open_count == 0
    for span in spans:
        durations = span.phase_durations()
        assert sum(durations.values()) == span.latency_ns()
        assert all(v >= 0 for v in durations.values())
        assert set(durations) <= set(PHASES)
        times = [t for _p, t in span.transitions]
        assert times == sorted(times)
        assert span.begin_ns == times[0]
        assert span.end_ns >= times[-1]


def test_spans_off_by_default_costs_nothing():
    result = api.run_workload(
        ni="cm5", workload="pingpong", payload_bytes=64, rounds=2,
    )
    assert result.spans == []
    assert not result.machine.spans.enabled
    assert len(result.machine.spans) == 0


# -- Perfetto / Chrome Trace Event Format ------------------------------


@pytest.fixture(scope="module")
def pingpong_spans():
    return api.run_workload(
        ni="cni32qm", workload="pingpong", payload_bytes=248,
        rounds=4, spans=True,
    ).spans


def test_perfetto_events_are_valid_and_balanced(pingpong_spans):
    events = perfetto_events(pingpong_spans)
    assert events
    open_slices = {}
    for event in events:
        assert event["ph"] in ("b", "e", "M")
        assert {"ph", "pid", "name"} <= set(event)
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            continue
        assert "ts" in event and "id" in event
        assert event["ts"] >= 0
        assert event["name"] in PHASES
        key = (event["id"], event["pid"])
        if event["ph"] == "b":
            assert key not in open_slices
            open_slices[key] = event["ts"]
        else:
            assert key in open_slices  # balanced: every e has its b
            assert event["ts"] >= open_slices.pop(key)
    assert not open_slices  # ...and every b was closed


def test_export_perfetto_file_and_multi_cell_offsets(tmp_path, pingpong_spans):
    path = str(tmp_path / "trace.json")
    count = export_perfetto(
        path, [("a", pingpong_spans), ("b", pingpong_spans)]
    )
    payload = json.loads((tmp_path / "trace.json").read_text())
    assert set(payload) == {"traceEvents", "displayTimeUnit"}
    events = payload["traceEvents"]
    assert len(events) == count
    pids = {
        e["pid"]: e["args"]["name"]
        for e in events if e["ph"] == "M"
    }
    a_pids = {p for p, name in pids.items() if name.startswith("a:node")}
    b_pids = {p for p, name in pids.items() if name.startswith("b:node")}
    # Cell b's tracks sit above cell a's: no pid collision.
    assert a_pids and b_pids and not (a_pids & b_pids)
    assert max(a_pids) < min(b_pids)
    assert set(pids) == a_pids | b_pids


def test_export_perfetto_accepts_bare_span_iterable(tmp_path, pingpong_spans):
    path = str(tmp_path / "bare.json")
    count = export_perfetto(path, pingpong_spans)
    assert count == len(json.loads(open(path).read())["traceEvents"])


# -- parallel determinism ----------------------------------------------


def test_span_files_byte_identical_across_jobs(tmp_path):
    from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
    from repro.experiments.parallel import Job, SweepExecutor, freeze_kwargs
    from repro.obs.export import spans_payload, write_json

    def jobs():
        return [
            Job(
                label=f"span-test:{ni}",
                ni=ni,
                workload="pingpong",
                params=DEFAULT_PARAMS,
                costs=DEFAULT_COSTS,
                kwargs=freeze_kwargs({"payload_bytes": 248, "rounds": 3}),
            )
            for ni in ("cm5", "cni32qm")
        ]

    paths = {}
    for n in (1, 4):
        executor = SweepExecutor(jobs=n, spans=True)
        cells = executor.map(jobs())
        assert all(cell.spans for cell in cells)
        path = tmp_path / f"spans-j{n}.json"
        write_json(str(path), spans_payload(
            [(cell.label, cell.spans) for cell in cells]
        ))
        paths[n] = path
    assert paths[1].read_bytes() == paths[4].read_bytes()


def test_runner_spans_and_perfetto_flags(tmp_path):
    from repro.experiments.runner import main
    from repro.obs import validate_manifest

    spans = tmp_path / "spans.json"
    perfetto = tmp_path / "trace.json"
    code = main([
        "table5-latency", "--quick", "--no-cache",
        "--spans", str(spans), "--perfetto", str(perfetto),
    ])
    assert code == 0
    payload = json.loads(spans.read_text())
    assert payload["schema"] == 3 and payload["span_schema"] == 1
    assert payload["cells"]
    for label, cell_spans in payload["cells"].items():
        assert cell_spans, label
        for span in cell_spans:
            assert sum(span["phases"].values()) == span["latency_ns"]
    trace = json.loads(perfetto.read_text())
    assert trace["traceEvents"]
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert validate_manifest(manifest) == []
    assert manifest["outputs"]["spans"] == str(spans)
    assert manifest["outputs"]["perfetto"] == str(perfetto)


# -- the paper's ordering ----------------------------------------------


def test_report_reproduces_paper_ordering_on_pingpong():
    """Among the seven NIs on a 248-byte pingpong: NI_2w (cm5) spends
    the most on send_overhead (uncached word stores by the processor —
    largest share of latency AND largest absolute ns), and CNI_32Qm
    the least per message on recv_buffering (messages land in a
    coherent receive cache the handler reads at cache-hit cost)."""
    from repro.analysis import decompose, latency_report
    from repro.ni import ALL_NI_NAMES

    seven = [name for name in ALL_NI_NAMES if name != "cm5-1cyc"]
    decomps = {}
    cells = []
    for ni in seven:
        spans = api.run_workload(
            ni=ni, workload="pingpong", payload_bytes=248,
            rounds=5, spans=True,
        ).spans
        d = decompose(spans, label=ni)
        assert d.count == len(spans)
        decomps[ni] = d
        cells.append((ni, spans))
    assert max(
        decomps, key=lambda n: decomps[n].phase_share("send_overhead")
    ) == "cm5"
    assert max(
        decomps, key=lambda n: decomps[n].phase_mean_ns["send_overhead"]
    ) == "cm5"
    assert min(
        decomps, key=lambda n: decomps[n].phase_mean_ns["recv_buffering"]
    ) == "cni32qm"
    report = latency_report(cells)
    for ni in seven:
        assert ni in report
    for phase in PHASES:
        assert phase in report
