"""Tests for the experiment harness (fast paths + structure)."""

import pytest

from repro.experiments import table1, table2, table3, runner
from repro.experiments.common import ExperimentResult, format_table
from repro.ni.registry import ALL_NI_NAMES


def test_table1_is_static_and_complete():
    result = table1.run()
    assert len(result.rows) == 5
    switches = [row[0] for row in result.rows]
    assert "TMC CM-5 network router" in switches
    # Derived column: nobody buffers even two 256B messages.
    assert all(float(row[2]) < 2.0 for row in result.rows)


def test_table2_covers_all_nis():
    result = table2.run()
    names = [row[0] for row in result.rows]
    assert len(names) == len(ALL_NI_NAMES)
    assert "CNI_32Q_m" in names
    assert "NI_2w" in names


def test_table3_matches_config():
    result = table3.run()
    assert result.cell("Network latency", "Value") == "40 ns"
    assert result.cell("Memory bus width", "Value") == "256 bits"


def test_format_table_alignment():
    text = format_table(["a", "long header"], [["x", 1], ["yy", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    # All rows padded to equal width per column.
    assert len(set(len(l) for l in lines[1:])) <= 2


def test_experiment_result_cell_lookup():
    result = ExperimentResult(
        experiment="x", headers=["k", "v"], rows=[["a", 1], ["b", 2]]
    )
    assert result.cell("b", "v") == 2
    with pytest.raises(KeyError):
        result.cell("zzz", "v")


def test_result_format_includes_notes():
    result = ExperimentResult(
        experiment="t", headers=["h"], rows=[["r"]], notes=["important"]
    )
    assert "note: important" in result.format()


# ------------------------------------------------------------- runner CLI

def test_runner_list(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "figure4" in out


def test_runner_rejects_unknown(capsys):
    assert runner.main(["nonsense"]) == 2


def test_runner_runs_static_tables(capsys):
    assert runner.main(["table1", "table2", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out and "Table 3" in out


def test_runner_no_args_lists(capsys):
    assert runner.main([]) == 0
    assert "table1" in capsys.readouterr().out
