"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Store, TokenPool


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=50))
def test_timeouts_fire_in_order(delays):
    sim = Simulator()
    fired = []

    def waiter(delay, index):
        yield sim.timeout(delay)
        fired.append((sim.now, index))

    for index, delay in enumerate(delays):
        sim.process(waiter(delay, index))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # Ties resolve in creation order (determinism).
    for i in range(1, len(fired)):
        if fired[i][0] == fired[i - 1][0]:
            assert fired[i][1] > fired[i - 1][1]


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=40))
def test_simulation_is_deterministic(delays):
    def run_once():
        sim = Simulator()
        log = []

        def worker(d, i):
            yield sim.timeout(d)
            log.append((sim.now, i))
            yield sim.timeout(d % 7)
            log.append((sim.now, i, "again"))

        for i, d in enumerate(delays):
            sim.process(worker(d, i))
        sim.run()
        return log

    assert run_once() == run_once()


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=1, max_value=200), min_size=1,
             max_size=30),
)
def test_token_pool_conservation(size, hold_times):
    sim = Simulator()
    pool = TokenPool(sim, size)
    max_in_use = [0]

    def user(hold):
        yield pool.acquire()
        max_in_use[0] = max(max_in_use[0], pool.in_use)
        yield sim.timeout(hold)
        pool.release()

    for hold in hold_times:
        sim.process(user(hold))
    sim.run()
    assert pool.available == size          # everything returned
    assert max_in_use[0] <= size           # never over-granted


@given(st.lists(st.integers(), min_size=1, max_size=50))
def test_store_preserves_fifo_order(items):
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in items:
            yield store.put(item)
            yield sim.timeout(1)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items


@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.integers(), min_size=1, max_size=30),
)
def test_bounded_store_never_exceeds_capacity(capacity, items):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    peak = [0]

    def producer():
        for item in items:
            yield store.put(item)
            peak[0] = max(peak[0], len(store))

    def consumer():
        for _ in items:
            yield sim.timeout(3)
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert peak[0] <= capacity
    assert len(store) == 0
