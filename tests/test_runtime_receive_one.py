"""Tests for the serialized receive path and retry bookkeeping."""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine


def test_receive_one_handles_exactly_one():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m.body))

    def sender(node):
        for i in range(3):
            yield from node.runtime.send(1, "h", 8, body=i)

    def receiver(node):
        rt = node.runtime
        while len(got) < 3:
            msg = yield from rt.receive_one()
            if msg is None:
                yield node.ni.wait_signal()
        return len(got)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert got == [0, 1, 2]


def test_receive_one_returns_none_when_idle():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=2)

    def receiver(node):
        msg = yield from node.runtime.receive_one()
        return msg

    done = machine.sim.process(receiver(machine.node(0)))
    machine.sim.run(until=done)
    assert done.value is None


def test_receive_one_consumes_deferred_first():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m.body))

    def sender(node):
        for i in range(2):
            yield from node.runtime.send(1, "h", 8, body=i)

    def receiver(node):
        rt = node.runtime
        # Absorb both into the deferred queue without running handlers.
        absorbed = 0
        while absorbed < 2:
            absorbed += yield from rt.absorb_pending()
            if absorbed < 2:
                yield node.ni.wait_signal()
        assert rt.pending_handlers == 2
        yield from rt.receive_one()
        assert rt.pending_handlers == 1
        yield from rt.receive_one()
        return got

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert done.value == [0, 1]


def test_fifo_retry_bookkeeping_balances():
    # Force bounces with fcb=1 and a slow consumer; afterwards all
    # returned messages must have been retried and delivered.
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, "cm5", num_nodes=2)
    got = []

    def handler(rt, msg):
        got.append(msg.body)
        yield from rt.node.compute(3_000)

    machine.node(1).runtime.register_handler("h", handler)

    def sender(node):
        for i in range(6):
            yield from node.runtime.send(1, "h", 56, body=i)
        yield from node.runtime.wait_for(lambda: len(got) >= 6)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 6)

    done = machine.sim.process(sender(machine.node(0)))
    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert sorted(got) == list(range(6))
    tx = machine.node(0).ni
    assert tx.fcu.pending_returns == 0
    assert tx.counters["processor_retries"] == tx.fcu.counters["retried"]
    assert tx.fcu.counters["bounced_back"] == tx.counters["processor_retries"]
