"""Tests for NetworkInterface base helpers (sizes, ports, gates)."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.network.message import Message


@pytest.fixture
def ni():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=2)
    return machine.node(0).ni


def test_words_helper(ni):
    assert ni._words(Message(src=0, dst=1, size=8)) == 1
    assert ni._words(Message(src=0, dst=1, size=9)) == 2
    assert ni._words(Message(src=0, dst=1, size=64)) == 8
    assert ni._words(Message(src=0, dst=1, size=256)) == 32


def test_chunks_helper(ni):
    assert ni._chunks(Message(src=0, dst=1, size=16)) == [16]
    assert ni._chunks(Message(src=0, dst=1, size=64)) == [64]
    assert ni._chunks(Message(src=0, dst=1, size=100)) == [64, 36]
    assert ni._chunks(Message(src=0, dst=1, size=256)) == [64] * 4


def test_blocks_for_helper(ni):
    assert ni._blocks_for(1) == 1
    assert ni._blocks_for(65) == 2


def test_idle_reflects_pending_state(ni):
    assert ni.idle()


def test_wait_signal_fires_on_arrival():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=2)
    machine.node(1).runtime.register_handler("h", lambda r, m: None)
    woke = []

    def waiter(node):
        yield node.ni.wait_signal()
        woke.append(machine.sim.now)

    def sender(node):
        yield from node.runtime.send(1, "h", 8)

    machine.sim.process(waiter(machine.node(1)))
    machine.sim.process(sender(machine.node(0)))
    machine.sim.run()
    assert len(woke) == 1


def test_throttle_attribute_defaults_zero(ni):
    assert ni.throttle_ns == 0


def test_repr_mentions_node(ni):
    assert "node=0" in repr(ni)
