"""Unit tests for the split-transaction memory bus."""

import pytest

from repro.config import DEFAULT_PARAMS
from repro.memory import DeviceMemory, MainMemory, MemoryBus
from repro.memory.bus import ADDRESS_PHASE_CYCLES
from repro.memory.types import BusOp, SnoopReply, Supplier
from repro.sim import Simulator


def make_bus():
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    memory = MainMemory(DEFAULT_PARAMS)
    bus.set_default_home(memory)
    return sim, bus, memory


def run_txn(sim, bus, *args, **kwargs):
    results = []

    def proc():
        result = yield from bus.transaction(*args, **kwargs)
        results.append(result)

    sim.process(proc())
    sim.run()
    return results[0]


ADDR_NS = ADDRESS_PHASE_CYCLES * DEFAULT_PARAMS.bus_cycle_ns  # 16 ns


def test_uncached_read_latency_includes_device_access():
    sim, bus, _ = make_bus()
    ni_mem = DeviceMemory(DEFAULT_PARAMS)  # 60 ns
    bus.set_home(bus.address_map["ni_registers"], ni_mem)
    addr = bus.address_map["ni_registers"].base
    result = run_txn(sim, bus, BusOp.UNCACHED_READ, addr, 8)
    # 16 address + 60 device + 4 data (8 bytes <= one 32B beat)
    assert result.elapsed_ns == ADDR_NS + 60 + 4
    assert result.supplier.kind == "ni"


def test_uncached_write_waits_for_device():
    # Device stores are strongly ordered: they include the device
    # write latency (unlike coherent writebacks, which are posted).
    sim, bus, _ = make_bus()
    ni_mem = DeviceMemory(DEFAULT_PARAMS)
    bus.set_home(bus.address_map["ni_registers"], ni_mem)
    addr = bus.address_map["ni_registers"].base
    result = run_txn(sim, bus, BusOp.UNCACHED_WRITE, addr, 8)
    assert result.elapsed_ns == ADDR_NS + 60 + 4


def test_writeback_is_posted():
    sim, bus, _ = make_bus()
    result = run_txn(sim, bus, BusOp.WRITEBACK, 0x100, 64)
    assert result.elapsed_ns == ADDR_NS + 8  # no memory latency


def test_coherent_read_from_memory():
    sim, bus, _ = make_bus()
    result = run_txn(sim, bus, BusOp.READ, 0x1000, 64)
    # 16 address + 120 memory + 2 data cycles (64B over 32B bus) = 8
    assert result.elapsed_ns == ADDR_NS + 120 + 8
    assert result.supplier.kind == "memory"
    assert not result.shared


def test_block_read_data_cycles_scale_with_size():
    sim, bus, _ = make_bus()
    r64 = run_txn(sim, bus, BusOp.BLOCK_READ, 0x0, 64)
    sim2, bus2, _ = make_bus()
    r256 = run_txn(sim2, bus2, BusOp.UNCACHED_READ, 0x0, 256)
    assert r256.elapsed_ns - r64.elapsed_ns == (8 - 2) * DEFAULT_PARAMS.bus_cycle_ns


def test_upgrade_has_no_data_phase():
    sim, bus, _ = make_bus()
    result = run_txn(sim, bus, BusOp.UPGRADE, 0x40, 64)
    assert result.elapsed_ns == ADDR_NS


def test_zero_size_rejected():
    sim, bus, _ = make_bus()
    with pytest.raises(ValueError):
        run_txn(sim, bus, BusOp.READ, 0x0, 0)


def test_missing_home_raises():
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    with pytest.raises(RuntimeError, match="no home"):
        run_txn(sim, bus, BusOp.READ, 0x0, 64)


def test_contention_serializes_address_phase():
    sim, bus, _ = make_bus()
    finish_times = []

    def requester():
        yield from bus.transaction(BusOp.UNCACHED_WRITE, 0x0, 8)
        finish_times.append(sim.now)

    sim.process(requester())
    sim.process(requester())
    sim.run()
    # Second transaction cannot start its address phase until the first
    # releases the address bus.
    assert finish_times[0] == ADDR_NS + 120 + 4  # memory-homed device store
    assert finish_times[1] >= finish_times[0] + 4


def test_split_transactions_overlap_memory_access():
    # Two reads: the second one's address phase proceeds while the
    # first waits on the 120 ns memory access.
    sim, bus, _ = make_bus()
    finish_times = []

    def requester(addr):
        yield from bus.transaction(BusOp.READ, addr, 64)
        finish_times.append(sim.now)

    sim.process(requester(0x0))
    sim.process(requester(0x1000))
    sim.run()
    serial = 2 * (ADDR_NS + 120 + 8)
    assert finish_times[1] < serial  # overlap happened


class FakeOwner:
    """A snooper that owns one block and supplies it."""

    name = "owner"
    kind = "cache"

    def __init__(self, addr):
        self.addr = addr
        self.snooped = []

    def snoop(self, txn):
        self.snooped.append(txn)
        if txn.op is BusOp.READ and txn.addr == self.addr:
            return SnoopReply(supplies=True, shared=True)
        return SnoopReply()

    def supplier(self):
        return Supplier(self.name, 30, self.kind)


def test_snooper_supplies_instead_of_memory():
    sim, bus, _ = make_bus()
    owner = FakeOwner(0x80)
    bus.attach(owner)
    result = run_txn(sim, bus, BusOp.READ, 0x80, 64)
    assert result.supplier.name == "owner"
    assert result.shared
    assert result.elapsed_ns == ADDR_NS + 30 + 8


def test_requester_does_not_snoop_itself():
    sim, bus, _ = make_bus()
    owner = FakeOwner(0x80)
    bus.attach(owner)
    result = run_txn(sim, bus, BusOp.READ, 0x80, 64, requester=owner)
    assert owner.snooped == []
    assert result.supplier.kind == "memory"


def test_uncoherent_ops_do_not_snoop():
    sim, bus, _ = make_bus()
    owner = FakeOwner(0x80)
    bus.attach(owner)
    run_txn(sim, bus, BusOp.UNCACHED_READ, 0x80, 8)
    assert owner.snooped == []


def test_double_supplier_violation_detected():
    sim, bus, _ = make_bus()
    bus.attach(FakeOwner(0x80))
    bus.attach(FakeOwner(0x80))
    with pytest.raises(RuntimeError, match="coherence invariant"):
        run_txn(sim, bus, BusOp.READ, 0x80, 64)


def test_accounting_counts_ops_and_suppliers():
    sim, bus, _ = make_bus()

    def proc():
        yield from bus.transaction(BusOp.READ, 0x0, 64)
        yield from bus.transaction(BusOp.READ, 0x40, 64)
        yield from bus.transaction(BusOp.WRITEBACK, 0x0, 64)

    sim.process(proc())
    sim.run()
    assert bus.transactions() == 3
    assert bus.transactions(BusOp.READ) == 2
    assert bus.transactions(BusOp.WRITEBACK) == 1
    assert bus.supplies_from("memory") == 2


def test_attach_rejects_duplicates():
    sim, bus, _ = make_bus()
    owner = FakeOwner(0x0)
    bus.attach(owner)
    with pytest.raises(ValueError):
        bus.attach(owner)
