"""The repro.api facade and the harmonized registry surfaces."""

import pytest

import repro
from repro import api
from repro.ni import ALL_NI_NAMES
from repro.workloads.base import Workload
from repro.workloads.registry import MACRO_NAMES


def test_listings():
    nis = api.list_nis()
    assert set(ALL_NI_NAMES) <= set(nis)
    workloads = api.list_workloads()
    assert "pingpong" in workloads and "stream" in workloads
    assert set(MACRO_NAMES) <= set(workloads)


def test_top_level_exports():
    assert repro.run_workload is api.run_workload
    assert repro.build_machine is api.build_machine
    assert repro.list_nis is api.list_nis
    assert repro.list_workloads is api.list_workloads
    assert repro.__version__ == "1.3.0"


@pytest.mark.parametrize("ni", ALL_NI_NAMES)
def test_run_workload_every_ni(ni):
    result = api.run_workload(
        ni=ni, workload="pingpong", payload_bytes=64, rounds=3,
    )
    assert result.elapsed_us > 0
    assert result.workload.extras["round_trip_us"] > 0
    assert result.metrics["node0.ni.messages_sent"] > 0
    fractions = result.breakdown()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_build_machine_defaults():
    machine = api.build_machine()
    assert len(machine) == repro.DEFAULT_PARAMS.num_nodes
    assert machine.node(0).ni.ni_name == "cni32qm"
    assert machine.metrics_snapshot()  # obs mounted and populated


def test_run_workload_accepts_instance():
    from repro.workloads.micro import StreamBandwidth

    wl = StreamBandwidth(payload_bytes=248, transfers=4)
    result = api.run_workload(ni="udma", workload=wl)
    assert result.workload.extras["bandwidth_mb_s"] > 0
    with pytest.raises(ValueError):
        api.run_workload(workload=wl, payload_bytes=8)


def test_run_workload_unknown_names():
    with pytest.raises(ValueError, match="unknown NI"):
        api.run_workload(ni="nope", workload="pingpong", rounds=1)
    with pytest.raises(ValueError, match="unknown workload"):
        api.run_workload(workload="nope")


# -- harmonized registries ---------------------------------------------


def test_ni_registry_surface():
    from repro.ni import registry

    cls = registry.get("cm5")
    assert registry.names() == tuple(sorted(registry.names()))
    assert "cm5" in registry.names()
    machine = api.build_machine(ni="cm5", num_nodes=2)
    assert isinstance(machine.node(0).ni, cls)
    with pytest.raises(ValueError):
        registry.get("definitely-not-an-ni")


def test_workload_registry_surface():
    from repro.workloads import registry

    cls = registry.get("em3d")
    wl = registry.create("em3d", iterations=1)
    assert isinstance(wl, cls) and isinstance(wl, Workload)
    assert registry.names() == tuple(sorted(registry.names()))
    with pytest.raises(ValueError):
        registry.get("definitely-not-a-workload")


def test_workload_register_roundtrip():
    from repro.workloads import registry

    class Fake(Workload):
        name = "fake-for-test"

        def body(self, machine):  # pragma: no cover - never run
            raise NotImplementedError

    registry.register("fake-for-test", Fake)
    try:
        assert registry.get("fake-for-test") is Fake
        assert "fake-for-test" in registry.names()
        assert "fake-for-test" in api.list_workloads()
    finally:
        registry._REGISTRY.pop("fake-for-test")


# -- deprecated aliases still work, loudly -----------------------------


def test_deprecated_workload_aliases_warn():
    from repro.workloads import registry

    with pytest.warns(DeprecationWarning, match="workload_class"):
        cls = registry.workload_class("em3d")
    assert cls is registry.get("em3d")
    with pytest.warns(DeprecationWarning, match="make_workload"):
        wl = registry.make_workload("em3d", iterations=1)
    assert isinstance(wl, cls)


def test_deprecated_register_variant_warns():
    from repro.ni import registry

    base = registry.get("cm5")
    with pytest.warns(DeprecationWarning, match="register_variant"):
        registry.register_variant("cm5@test-alias", base)
    try:
        assert registry.get("cm5@test-alias") is base
    finally:
        registry._REGISTRY.pop("cm5@test-alias")
