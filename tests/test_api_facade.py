"""The repro.api facade and the harmonized registry surfaces."""

import pytest

import repro
from repro import api
from repro.ni import ALL_NI_NAMES
from repro.workloads.base import Workload
from repro.workloads.registry import MACRO_NAMES


def test_listings():
    nis = api.list_nis()
    assert set(ALL_NI_NAMES) <= set(nis)
    workloads = api.list_workloads()
    assert "pingpong" in workloads and "stream" in workloads
    assert set(MACRO_NAMES) <= set(workloads)


def test_top_level_exports():
    assert repro.run_workload is api.run_workload
    assert repro.run_collective is api.run_collective
    assert repro.build_machine is api.build_machine
    assert repro.list_nis is api.list_nis
    assert repro.list_workloads is api.list_workloads
    assert repro.list_ops is api.list_ops
    assert repro.Spec is api.Spec
    assert repro.__version__ == "1.7.0"


@pytest.mark.parametrize("ni", ALL_NI_NAMES)
def test_run_workload_every_ni(ni):
    result = api.run_workload(
        ni=ni, workload="pingpong", payload_bytes=64, rounds=3,
    )
    assert result.elapsed_us > 0
    assert result.workload.extras["round_trip_us"] > 0
    assert result.metrics["node0.ni.messages_sent"] > 0
    fractions = result.breakdown()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_build_machine_defaults():
    machine = api.build_machine()
    assert len(machine) == repro.DEFAULT_PARAMS.num_nodes
    assert machine.node(0).ni.ni_name == "cni32qm"
    assert machine.metrics_snapshot()  # obs mounted and populated


def test_run_workload_accepts_instance():
    from repro.workloads.micro import StreamBandwidth

    wl = StreamBandwidth(payload_bytes=248, transfers=4)
    result = api.run_workload(ni="udma", workload=wl)
    assert result.workload.extras["bandwidth_mb_s"] > 0
    with pytest.raises(ValueError):
        api.run_workload(workload=wl, payload_bytes=8)


def test_run_workload_unknown_names():
    with pytest.raises(ValueError, match="unknown NI"):
        api.run_workload(ni="nope", workload="pingpong", rounds=1)
    with pytest.raises(ValueError, match="unknown workload"):
        api.run_workload(workload="nope")


# -- harmonized registries ---------------------------------------------


def test_ni_registry_surface():
    from repro.ni import registry

    cls = registry.get("cm5")
    assert registry.names() == tuple(sorted(registry.names()))
    assert "cm5" in registry.names()
    machine = api.build_machine(ni="cm5", num_nodes=2)
    assert isinstance(machine.node(0).ni, cls)
    with pytest.raises(ValueError):
        registry.get("definitely-not-an-ni")


def test_workload_registry_surface():
    from repro.workloads import registry

    cls = registry.get("em3d")
    wl = registry.create("em3d", iterations=1)
    assert isinstance(wl, cls) and isinstance(wl, Workload)
    assert registry.names() == tuple(sorted(registry.names()))
    with pytest.raises(ValueError):
        registry.get("definitely-not-a-workload")


def test_workload_register_roundtrip():
    from repro.workloads import registry

    class Fake(Workload):
        name = "fake-for-test"

        def body(self, machine):  # pragma: no cover - never run
            raise NotImplementedError

    registry.register("fake-for-test", Fake)
    try:
        assert registry.get("fake-for-test") is Fake
        assert "fake-for-test" in registry.names()
        assert "fake-for-test" in api.list_workloads()
    finally:
        registry._REGISTRY.pop("fake-for-test")


# -- pre-1.4 deprecated aliases are gone --------------------------------


def test_deprecated_aliases_removed():
    import repro.ni.registry as ni_registry
    import repro.workloads
    import repro.workloads.registry as workload_registry

    assert not hasattr(workload_registry, "workload_class")
    assert not hasattr(workload_registry, "make_workload")
    assert not hasattr(repro.workloads, "make_workload")
    assert not hasattr(ni_registry, "register_variant")


# -- transfer-op surface -------------------------------------------------


def test_list_ops():
    ops = api.list_ops()
    assert ops == tuple(sorted(ops))
    assert {"barrier", "bcast", "reduce", "put", "get"} <= set(ops)


def test_op_registry_surface():
    from repro.transfer import registry
    from repro.transfer.ops import Put, TransferOp

    assert registry.get("put") is Put
    op = registry.create("put", payload=512, protocol="eager")
    assert isinstance(op, TransferOp)
    assert op.payload.nbytes == 512
    with pytest.raises(ValueError):
        registry.get("definitely-not-an-op")


def test_spec_for_ni_and_workload():
    spec = api.Spec("cni32qm", recv_queue_blocks=64)
    machine = api.build_machine(ni=spec, num_nodes=2)
    assert machine.node(0).ni.recv_queue_blocks == 64
    assert machine.node(0).ni.ni_name == "cni32qm"
    result = api.run_workload(
        ni="cm5", workload=api.Spec("pingpong", rounds=2),
        payload_bytes=64,
    )
    assert result.workload.extras["round_trip_us"] > 0
    with pytest.raises(ValueError, match="twice"):
        api.run_workload(
            workload=api.Spec("pingpong", rounds=2), rounds=3,
        )


def test_run_collective_basic():
    result = api.run_collective(
        "reduce", ni="cni32qm", nodes=4, rounds=2, payload=256,
    )
    extras = result.workload.extras
    assert extras["op"] == "reduce(256B)"
    assert extras["op_latency_us"] > 0
    assert extras["goodput_mb_s"] > 0
    assert result.machine.transfer.reduce_results  # combined values kept


def test_run_collective_rejects_bad_input():
    from repro.transfer.ops import Put

    with pytest.raises(ValueError, match="unknown transfer op"):
        api.run_collective("nope")
    with pytest.raises(ValueError, match="instance plus"):
        api.run_collective(Put(payload=64), payload=128)
    with pytest.raises(TypeError, match="not a transfer op"):
        api.run_collective(42)
