"""The observability layer: registry, snapshots, export, manifests."""

import json

import pytest

from repro import api
from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.experiments.parallel import (
    CellResult,
    Job,
    SweepExecutor,
    freeze_kwargs,
    run_cell,
)
from repro.obs import (
    MANIFEST_KEYS,
    NULL_INSTRUMENT,
    FixedBucketHistogram,
    MetricsRegistry,
    build_manifest,
    merge_snapshots,
    metrics_payload,
    read_trace_jsonl,
    validate_manifest,
)
from repro.sim import Histogram


# -- registry behaviour ------------------------------------------------


def test_registry_counter_gauge_histogram():
    reg = MetricsRegistry()
    c = reg.counter("a.hits")
    c.add()
    c.add(4)
    reg.gauge("a.depth", lambda: 7)
    h = reg.histogram("a.lat", buckets=(10, 100))
    h.observe(5)
    h.observe(50)
    h.observe(5000)
    snap = reg.snapshot()
    assert snap["a.hits"] == 5
    assert snap["a.depth"] == 7
    assert snap["a.lat.count"] == 3
    assert snap["a.lat.sum"] == 5055
    assert snap["a.lat.le_10"] == 1
    assert snap["a.lat.le_100"] == 1
    assert snap["a.lat.overflow"] == 1


def test_registry_rejects_duplicates_and_bad_paths():
    reg = MetricsRegistry()
    reg.counter("x.y")
    with pytest.raises(ValueError):
        reg.counter("x.y")
    with pytest.raises(ValueError):
        reg.counter("bad path")
    with pytest.raises(ValueError):
        reg.counter(".leading")


def test_disabled_registry_hands_out_noop_instruments():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("a.b")
    assert c is NULL_INSTRUMENT
    assert not c  # falsy, so `if counter:` guards work
    c.add(5)
    c.observe(1)
    c.set(2)
    assert reg.snapshot() == {}


def test_scope_prefixes_paths():
    reg = MetricsRegistry()
    scope = reg.scope("node0.ni")
    scope.counter("retries").add(3)
    assert reg.snapshot() == {"node0.ni.retries": 3}


def test_snapshot_is_sorted_flat_dict():
    reg = MetricsRegistry()
    reg.counter("b.z").add(1)
    reg.counter("a.q").add(2)
    assert list(reg.snapshot()) == sorted(reg.snapshot())


def test_merge_snapshots_sums_leafwise():
    merged = merge_snapshots([
        {"a": 1, "b": 2.5},
        {"a": 10, "c": 3},
    ])
    assert merged == {"a": 11, "b": 2.5, "c": 3}
    assert list(merged) == sorted(merged)


def test_merge_snapshots_empty_inputs():
    assert merge_snapshots([]) == {}
    assert merge_snapshots([{}, {}]) == {}
    assert merge_snapshots([{}, {"a": 1}]) == {"a": 1}


def test_merge_snapshots_disjoint_leaves_concatenate():
    merged = merge_snapshots([{"a.x": 1}, {"b.y": 2}, {"c.z": 3.5}])
    assert merged == {"a.x": 1, "b.y": 2, "c.z": 3.5}
    assert list(merged) == sorted(merged)


def test_merge_snapshots_preserves_grand_total():
    snaps = [
        {"a": 3, "b": 4, "c": 0.5},
        {"a": 7, "c": 1.5},
        {"b": 2},
        {},
    ]
    merged = merge_snapshots(snaps)
    assert sum(merged.values()) == sum(
        v for snap in snaps for v in snap.values()
    )
    # Merging is order-independent (addition commutes).
    assert merge_snapshots(reversed(snaps)) == merged


def test_fixed_bucket_histogram_paths_are_safe():
    h = FixedBucketHistogram((0.5, 10))
    h.observe(0.2)
    reg = MetricsRegistry()
    reg.mount("lat", h)
    assert all(
        " " not in path and ":" not in path.split(".")[-1]
        for path in reg.snapshot()
    )


# -- sim Histogram rewrite (value, count) pairs ------------------------


def test_histogram_bulk_add_matches_expanded():
    a, b = Histogram(), Histogram()
    a.add(8, 1000)
    a.add(64, 500)
    for _ in range(1000):
        b.add(8)
    for _ in range(500):
        b.add(64)
    for frac in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert a.percentile(frac) == b.percentile(frac)
    assert a.mean == b.mean
    assert a.buckets() == b.buckets()
    assert a.minimum == 8 and a.maximum == 64


def test_histogram_merge_folds_buckets():
    a, b = Histogram(), Histogram()
    a.add(8, 2)
    b.add(8, 3)
    b.add(16)
    a.merge(b)
    assert a.buckets() == {8: 5, 16: 1}
    assert a.count == 6
    assert a.total == 56


def test_histogram_samples_sorted_expansion():
    h = Histogram()
    h.add(5, 2)
    h.add(1)
    assert h.samples == (1, 5, 5)


# -- kernel gauges -----------------------------------------------------


def test_mount_simulator_scheduler_internals_wheel_and_heap():
    from repro.config import DEFAULT_PARAMS
    from repro.obs import SIM_SCHEDULER_GAUGE_KEYS, mount_simulator
    from repro.sim import Simulator

    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        reg = MetricsRegistry()
        mount_simulator(reg, sim, include_scheduler_internals=True)
        snap = reg.snapshot()
        for key in SIM_SCHEDULER_GAUGE_KEYS:
            assert f"sim.{key}" in snap, (scheduler, key)
        if scheduler == "wheel":
            sim.timeout(5)
            assert reg.snapshot()["sim.wheel_occupied_slots"] == 1
        else:
            # Heap has no wheel: the gauges read 0 instead of raising.
            assert all(
                snap[f"sim.{k}"] == 0 for k in SIM_SCHEDULER_GAUGE_KEYS
            )


def test_mount_simulator_default_omits_scheduler_internals():
    from repro.obs import mount_simulator
    from repro.sim import Simulator

    reg = MetricsRegistry()
    mount_simulator(reg, Simulator(scheduler="wheel"))
    assert not any("wheel" in path for path in reg.snapshot())


# -- machine mounting --------------------------------------------------


def test_machine_mounts_stable_paths():
    machine = api.build_machine(ni="cni32qm", num_nodes=2)
    paths = machine.obs.paths()
    for expected in (
        "sim.now",
        "sim.events_scheduled",
        "node0.bus.occupancy_ns",
        "node1.ni.fcu.pending_inbound",
        "node0.ni.sendq.enqueued",
        "node0.ni.rcache.valid_blocks",
        "node0.runtime.pending_handlers",
    ):
        assert expected in paths, expected
    snap = machine.metrics_snapshot()
    assert all(isinstance(v, (int, float)) for v in snap.values())


def test_ni_counter_keys_are_declared(ni_run_results):
    for name, result in ni_run_results.items():
        machine = result.machine
        declared = set(type(machine.node(0).ni).metric_names)
        for node in machine:
            observed = set(node.ni.counters.as_dict())
            undeclared = observed - declared
            assert not undeclared, (
                f"{name}: counters {sorted(undeclared)} not in metric_names"
            )


@pytest.fixture(scope="module")
def ni_run_results():
    from repro.ni import ALL_NI_NAMES

    return {
        name: api.run_workload(
            ni=name, workload="pingpong", payload_bytes=64, rounds=3,
        )
        for name in ALL_NI_NAMES
    }


def test_bus_occupancy_accounted(ni_run_results):
    for name, result in ni_run_results.items():
        snap = result.metrics
        assert snap["node0.bus.occupancy_ns"] == (
            snap["node0.bus.addr_occupancy_ns"]
            + snap["node0.bus.data_occupancy_ns"]
        )
        if name != "cm5-1cyc":  # register-mapped NI: no bus traffic
            assert snap["node0.bus.occupancy_ns"] > 0


# -- parallel metrics determinism --------------------------------------


def _jobs():
    return [
        Job(
            label=f"obs-test:{wl}",
            ni="cni32qm",
            workload=wl,
            params=DEFAULT_PARAMS,
            costs=DEFAULT_COSTS,
            kwargs=freeze_kwargs(kw),
        )
        for wl, kw in (
            ("pingpong", {"payload_bytes": 64, "rounds": 3}),
            ("stream", {"payload_bytes": 248, "transfers": 5}),
        )
    ]


def test_metrics_identical_serial_vs_parallel():
    serial = SweepExecutor(jobs=1).map(_jobs())
    parallel = SweepExecutor(jobs=2).map(_jobs())
    for s, p in zip(serial, parallel):
        assert s.metrics == p.metrics
        assert s.metrics  # non-empty
    payload_s = metrics_payload(
        [(c.label, c.metrics) for c in serial]
    )
    payload_p = metrics_payload(
        [(c.label, c.metrics) for c in parallel]
    )
    assert payload_s == payload_p
    assert payload_s["schema"] == 3


def test_executor_records_completed_history():
    ex = SweepExecutor(jobs=1)
    jobs = _jobs()
    ex.map(jobs)
    assert [job.label for job, _cell, _cached in ex.completed] == [
        j.label for j in jobs
    ]
    assert all(not cached for _j, _c, cached in ex.completed)


def test_tracing_executor_collects_trace():
    ex = SweepExecutor(jobs=1, tracing=True)
    results = ex.map(_jobs()[:1])
    assert results[0].trace
    record = results[0].trace[0]
    assert {"cell", "time", "source", "category", "detail"} <= set(record)


# -- trace JSONL round-trip --------------------------------------------


def test_trace_jsonl_round_trip(tmp_path):
    machine = api.build_machine(ni="cm5", num_nodes=2)
    machine.network.tracer.enabled = True
    from repro.workloads.micro import PingPong

    PingPong(payload_bytes=16, rounds=2).run(machine=machine)
    tracer = machine.network.tracer
    path = str(tmp_path / "trace.jsonl")
    count = tracer.export_jsonl(path)
    assert count == len(tracer)
    loaded = read_trace_jsonl(path)
    assert loaded == tracer.to_jsonable()

    only_wire = tracer.to_jsonable(categories=["wire"])
    assert only_wire and all(r["category"] == "wire" for r in only_wire)
    assert len(only_wire) < count


# -- result schema -----------------------------------------------------


def test_cell_result_schema_round_trip():
    cell = run_cell(_jobs()[0])
    data = json.loads(json.dumps(cell.to_jsonable()))
    assert data["schema"] == 3  # 3 added digest + timeline
    back = CellResult.from_jsonable(data)
    assert back == cell


def test_cell_result_rejects_other_schema():
    cell = run_cell(_jobs()[0])
    data = cell.to_jsonable()
    data["schema"] = 99
    with pytest.raises(ValueError):
        CellResult.from_jsonable(data)
    del data["schema"]
    with pytest.raises(ValueError):
        CellResult.from_jsonable(data)


def test_experiment_result_schema_round_trip():
    from repro.experiments.common import ExperimentResult

    result = ExperimentResult(
        experiment="t", headers=["a", "b"], rows=[["x", 1]], notes=["n"],
    )
    data = result.to_dict()
    assert data["schema"] == 1
    back = ExperimentResult.from_dict(json.loads(json.dumps(data)))
    assert back == result
    data["schema"] = 2
    with pytest.raises(ValueError):
        ExperimentResult.from_dict(data)


# -- manifest ----------------------------------------------------------


def test_build_manifest_has_frozen_key_set():
    manifest = build_manifest(
        experiments=["figure1"],
        quick=True,
        jobs=2,
        cells=[{"label": "x", "elapsed_ns": 10, "cached": False}],
        wall_time_s=1.5,
        cache_enabled=True,
        cache_hits=3,
        cache_misses=4,
        outputs={"json": None, "metrics": "m.json", "trace": None},
    )
    assert set(manifest) == set(MANIFEST_KEYS)
    assert validate_manifest(manifest) == []
    assert manifest["sim_time_ns"] == 10


def test_validate_manifest_reports_problems():
    problems = validate_manifest({"schema": 0})
    assert problems
    assert any("missing keys" in p for p in problems)


# -- runner CLI flags --------------------------------------------------


def test_runner_writes_metrics_trace_and_manifest(tmp_path):
    from repro.experiments.runner import main

    metrics = tmp_path / "metrics.json"
    trace = tmp_path / "trace.jsonl"
    code = main([
        "table5-latency", "--quick", "--no-cache",
        "--metrics", str(metrics),
        "--trace", str(trace),
        "--trace-filter", "wire,accept",
    ])
    assert code == 0
    payload = json.loads(metrics.read_text())
    assert payload["schema"] == 3 and payload["cells"] and payload["totals"]
    records = read_trace_jsonl(str(trace))
    assert records
    assert {r["category"] for r in records} <= {"wire", "accept"}
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert validate_manifest(manifest) == []
    assert manifest["outputs"]["metrics"] == str(metrics)
