"""Payload descriptors for the transfer-op API (repro.transfer)."""

import pytest

from repro.transfer import (
    Contiguous,
    Descriptor,
    Strided,
    Vector,
    as_descriptor,
)


# -- shapes -------------------------------------------------------------


def test_contiguous_shape():
    d = Contiguous(4096)
    assert d.nbytes == 4096
    assert d.segments == 1
    assert d.spec() == 4096
    assert Contiguous(0).nbytes == 0


def test_strided_shape():
    d = Strided(count=16, block_bytes=64, stride_bytes=256)
    assert d.nbytes == 16 * 64
    assert d.segments == 16
    assert d.spec() == ("strided", 16, 64, 256)


def test_vector_shape():
    d = Vector((100, 28, 4))
    assert d.nbytes == 132
    assert d.segments == 3
    assert d.spec() == ("vector", 100, 28, 4)
    assert Vector([8, 8]).lengths == (8, 8)   # list coerced to tuple


def test_descriptors_are_frozen_and_hashable():
    d = Strided(4, 32, 64)
    with pytest.raises(AttributeError):
        d.count = 8
    assert len({d, Strided(4, 32, 64), Contiguous(128)}) == 2


# -- validation ---------------------------------------------------------


def test_contiguous_rejects_negative():
    with pytest.raises(ValueError):
        Contiguous(-1)


def test_strided_rejects_bad_geometry():
    with pytest.raises(ValueError):
        Strided(0, 64, 256)          # no blocks
    with pytest.raises(ValueError):
        Strided(4, 0, 256)           # empty blocks
    with pytest.raises(ValueError):
        Strided(4, 64, 32)           # overlapping: stride < block


def test_vector_rejects_bad_lengths():
    with pytest.raises(ValueError):
        Vector(())
    with pytest.raises(ValueError):
        Vector((64, -1))


# -- as_descriptor coercion ---------------------------------------------


def test_as_descriptor_passthrough_and_int():
    d = Strided(2, 8, 16)
    assert as_descriptor(d) is d
    out = as_descriptor(256)
    assert isinstance(out, Contiguous) and out.size == 256


def test_as_descriptor_tagged_specs():
    strided = as_descriptor(("strided", 16, 64, 256))
    assert strided == Strided(16, 64, 256)
    vector = as_descriptor(["vector", 100, 28])     # lists accepted too
    assert vector == Vector((100, 28))


def test_as_descriptor_spec_roundtrip():
    for d in (Contiguous(512), Strided(8, 32, 64), Vector((12, 140))):
        assert as_descriptor(d.spec()) == d


def test_as_descriptor_rejects_junk():
    with pytest.raises(TypeError):
        as_descriptor(True)                   # bool is not a size
    with pytest.raises(TypeError):
        as_descriptor("4096")
    with pytest.raises(TypeError):
        as_descriptor(("spiral", 1, 2, 3))    # unknown tag
    with pytest.raises(TypeError):
        as_descriptor(None)


def test_descriptor_base_is_abstract_vocabulary():
    assert issubclass(Contiguous, Descriptor)
    assert issubclass(Strided, Descriptor)
    assert issubclass(Vector, Descriptor)
