"""Unit tests for node assembly, staging allocator and the machine."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.node import (
    STAGING_IN_BASE,
    STAGING_OUT_BASE,
    STAGING_WINDOW_BLOCKS,
    StagingAllocator,
)


def test_machine_builds_default_node_count():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5")
    assert len(machine) == 16           # Table 3
    assert [n.node_id for n in machine] == list(range(16))


def test_machine_node_count_override():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=4)
    assert len(machine) == 4


def test_each_node_has_private_bus_and_cache():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=3)
    buses = {id(n.bus) for n in machine}
    caches = {id(n.cache) for n in machine}
    assert len(buses) == 3 and len(caches) == 3


def test_all_nodes_share_one_network():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=3)
    assert machine.network.node_ids == (0, 1, 2)


def test_machine_validates_params():
    bad = DEFAULT_PARAMS.replace(num_nodes=0)
    with pytest.raises(ValueError):
        Machine(bad, DEFAULT_COSTS, "cm5")


def test_compute_rejects_negative():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=1)
    node = machine.node(0)

    def prog():
        yield from node.compute(-1)

    machine.sim.process(prog())
    with pytest.raises(ValueError):
        machine.sim.run()


def test_compute_advances_clock():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=1)
    node = machine.node(0)

    def prog():
        yield from node.compute(1234)

    p = machine.sim.process(prog())
    machine.sim.run(until=p)
    assert machine.sim.now == 1234


def test_state_breakdown_merges_all_nodes():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=2)

    def prog(node):
        yield from node.compute(100)

    procs = [machine.sim.process(prog(n)) for n in machine]
    machine.sim.run(until=machine.sim.all_of(procs))
    machine.finish()
    assert machine.state_breakdown()["compute"] == 200


# ------------------------------------------------------------- staging

def test_staging_allocator_block_counts():
    staging = StagingAllocator(DEFAULT_PARAMS)
    assert len(staging.out_blocks(1)) == 1
    assert len(staging.out_blocks(64)) == 1
    assert len(staging.out_blocks(65)) == 2
    assert len(staging.in_blocks(256)) == 4


def test_staging_rotates_without_immediate_reuse():
    staging = StagingAllocator(DEFAULT_PARAMS)
    first = staging.out_blocks(256)
    second = staging.out_blocks(256)
    assert not set(first) & set(second)


def test_staging_windows_are_disjoint():
    staging = StagingAllocator(DEFAULT_PARAMS)
    outs = set(staging.out_blocks(STAGING_WINDOW_BLOCKS * 64))
    ins = set(staging.in_blocks(STAGING_WINDOW_BLOCKS * 64))
    assert not outs & ins


def test_staging_does_not_alias_cni_queue_sets():
    # Direct-mapped set indices must avoid the CNI queue slots
    # (sets 0..1023); see the layout comment in node.py.
    sets = DEFAULT_PARAMS.cache_sets
    for base in (STAGING_OUT_BASE, STAGING_IN_BASE):
        for i in range(STAGING_WINDOW_BLOCKS):
            set_index = ((base // 64) + i) % sets
            assert set_index >= 1024


def test_staging_wraps_within_window():
    staging = StagingAllocator(DEFAULT_PARAMS)
    seen = set()
    for _ in range(3 * STAGING_WINDOW_BLOCKS // 4):
        seen.update(staging.out_blocks(256))
    lo, hi = min(seen), max(seen)
    assert lo >= STAGING_OUT_BASE
    assert hi < STAGING_OUT_BASE + STAGING_WINDOW_BLOCKS * 64
