"""Unit tests for the active-message runtime."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.tempest.runtime import HandlerError


def make_machine(ni_name="cni32qm", nodes=2, params=None):
    return Machine(params or DEFAULT_PARAMS, DEFAULT_COSTS, ni_name,
                   num_nodes=nodes)


def test_handler_registration_and_duplicates():
    machine = make_machine()
    rt = machine.node(0).runtime
    rt.register_handler("h", lambda r, m: None)
    assert rt.handler_registered("h")
    with pytest.raises(ValueError):
        rt.register_handler("h", lambda r, m: None)


def test_unknown_handler_raises():
    machine = make_machine()
    received = []
    machine.node(1).runtime.register_handler(
        "known", lambda r, m: received.append(m)
    )

    def sender(node):
        yield from node.runtime.send(1, "mystery", 8)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: received)

    machine.sim.process(sender(machine.node(0)))
    machine.sim.process(receiver(machine.node(1)))
    with pytest.raises(HandlerError):
        machine.sim.run()


def test_oversized_payload_rejected():
    machine = make_machine()

    def sender(node):
        yield from node.runtime.send(1, "h", 10_000)

    machine.sim.process(sender(machine.node(0)))
    with pytest.raises(ValueError, match="VirtualChannel"):
        machine.sim.run()


def test_plain_function_and_generator_handlers_both_work():
    machine = make_machine()
    log = []

    def plain(rt, msg):
        log.append(("plain", msg.body))

    def generator(rt, msg):
        yield from rt.node.compute(10)
        log.append(("gen", msg.body))

    machine.node(1).runtime.register_handler("plain", plain)
    machine.node(1).runtime.register_handler("gen", generator)

    def sender(node):
        yield from node.runtime.send(1, "plain", 8, body=1)
        yield from node.runtime.send(1, "gen", 8, body=2)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(log) == 2)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert log == [("plain", 1), ("gen", 2)]


def test_send_records_sizes_and_counters():
    machine = make_machine()
    machine.node(1).runtime.register_handler("h", lambda r, m: None)

    def sender(node):
        yield from node.runtime.send(1, "h", 24)
        yield from node.runtime.send(1, "h", 56, record=False)

    def receiver(node):
        yield from node.runtime.wait_for(
            lambda: node.runtime.counters["handled"] >= 2
        )

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    rt0 = machine.node(0).runtime
    assert rt0.counters["sent"] == 2
    assert rt0.sent_sizes.buckets() == {32: 1}   # record=False skipped


def test_handlers_deferred_not_reentrant():
    # While a handler runs, further arrivals are extracted but their
    # handlers wait — execution order stays FIFO.
    machine = make_machine()
    order = []

    def slow(rt, msg):
        order.append(("start", msg.body))
        yield from rt.node.compute(5_000)
        order.append(("end", msg.body))

    machine.node(1).runtime.register_handler("slow", slow)

    def sender(node):
        for i in range(3):
            yield from node.runtime.send(1, "slow", 8, body=i)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(order) == 6)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert order == [
        ("start", 0), ("end", 0),
        ("start", 1), ("end", 1),
        ("start", 2), ("end", 2),
    ]


def test_send_time_attributed_to_send_state():
    machine = make_machine("cm5")
    machine.node(1).runtime.register_handler("h", lambda r, m: None)

    def sender(node):
        yield from node.runtime.send(1, "h", 120)
        node.finish()

    done = machine.sim.process(sender(machine.node(0)))
    machine.sim.run(until=done)
    timer = machine.node(0).timer
    assert timer.total("send") > 0
    assert timer.total("receive") == 0


def test_receive_time_attributed_to_receive_state():
    machine = make_machine("cm5")
    hits = []
    machine.node(1).runtime.register_handler("h", lambda r, m: hits.append(1))

    def sender(node):
        yield from node.runtime.send(1, "h", 120)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: hits)
        node.finish()

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    timer = machine.node(1).timer
    assert timer.total("receive") > 0
    assert timer.total("wait") > 0


def test_throttle_delays_between_sends():
    machine = make_machine("cni32qm")
    machine.node(1).runtime.register_handler("h", lambda r, m: None)
    machine.node(0).ni.throttle_ns = 10_000
    times = []

    def sender(node):
        for _ in range(3):
            yield from node.runtime.send(1, "h", 8)
            times.append(machine.sim.now)

    done = machine.sim.process(sender(machine.node(0)))

    def receiver(node):
        yield from node.runtime.wait_for(lambda: not done.is_alive)

    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert times[1] - times[0] >= 10_000
    assert times[2] - times[1] >= 10_000


def test_drain_empties_deferred_work():
    machine = make_machine()
    count = []
    machine.node(1).runtime.register_handler("h", lambda r, m: count.append(1))

    def sender(node):
        for _ in range(5):
            yield from node.runtime.send(1, "h", 8)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(count) >= 1)
        yield from node.runtime.drain()
        return len(count)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert machine.node(1).runtime.pending_handlers == 0
