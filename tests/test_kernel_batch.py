"""Kernel v3 tests: batched same-tick dispatch parity.

``Simulator.run`` drains whole ticks in one inner loop (and, when the
optional ``repro.sim._ckernel`` extension is built, in C).  The
contract is *bit-identical schedules*: every batched variant must
process the exact ``(time, seq)`` stream that the unbatched
:meth:`Simulator.step` reference produces, for every workload shape —
zero-delay chains, interrupt tombstones, mid-tick sentinel stops,
fault-injection RNG draws.

The batched loops expose the stream through ``sim._schedule_hook``
(called once per live entry, tombstones excluded), which is exactly
what :class:`repro.sim.ScheduleDigest` folds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine
from repro.sim import Event, Interrupt, Resource, ScheduleDigest, Simulator, Store

BOTH = pytest.mark.parametrize("scheduler", ["heap", "wheel"])

#: Loops under test: the dispatching ``run`` (C when built, else the
#: pure-Python batched loop) and, when the extension is active, the
#: pure-Python loop explicitly — so an accelerated checkout still
#: exercises its reference.
RUNNERS = ["run", "python"] if engine._crun is not None else ["run"]


def _drive_step(sim, until_event=None):
    """Unbatched reference: step until drained (or the sentinel)."""
    digest = ScheduleDigest()
    if until_event is not None:
        while not until_event.processed:
            digest.update(*sim.step())
    else:
        while sim.peek() is not None:
            digest.update(*sim.step())
    return digest


def _drive_batched(sim, runner, until=None):
    """Batched run with every live entry folded via the hook."""
    digest = ScheduleDigest()
    sim._schedule_hook = digest.update
    if runner == "python" and type(sim) is Simulator:
        sim._run_py(until)
    else:
        sim.run(until)
    return digest


def _assert_parity(build, until_of=None, scheduler="heap"):
    """Build twice per runner and compare step vs batched digests."""
    sim = Simulator(scheduler=scheduler)
    reference = _drive_step(sim, build(sim))
    assert reference.count > 0
    for runner in RUNNERS:
        sim = Simulator(scheduler=scheduler)
        sentinel = build(sim)
        batched = _drive_batched(sim, runner, until=sentinel)
        assert batched == reference, (
            f"{runner} loop diverged from step reference "
            f"({batched.count} vs {reference.count} entries)"
        )


# ---------------------------------------------------------------------------
# zero-delay chains: the case batching exists for
# ---------------------------------------------------------------------------

@BOTH
def test_zero_delay_chain_parity(scheduler):
    """Long same-tick chains (delay(0), handoffs, try_put cascades)
    must replay identically: bucket entries carry larger sequence
    numbers than the heap's same-tick prefix."""

    def build(sim):
        store = Store(sim)
        res = Resource(sim)

        def producer():
            for i in range(40):
                with (yield res.request()):
                    yield sim.delay(0)
                store.try_put(i)

        def consumer():
            total = 0
            for _ in range(40):
                item = yield store.get()
                yield sim.delay(0 if item % 3 else 2)
                total += item
            return total

        sim.process(producer())
        return sim.process(consumer())

    _assert_parity(build, scheduler=scheduler)


@BOTH
def test_interrupt_tombstone_parity(scheduler):
    """Tombstoned entries advance the clock but never reach the digest
    hook — identically in every loop."""

    def build(sim):
        def sleeper():
            try:
                yield sim.delay(500)
            except Interrupt:
                yield sim.delay(5)
            yield sim.delay(100)

        def interrupter(target):
            yield sim.delay(3)
            target.interrupt("poke")

        p = sim.process(sleeper())
        sim.process(interrupter(p))
        return p

    _assert_parity(build, scheduler=scheduler)


@BOTH
def test_mid_tick_sentinel_parity(scheduler):
    """A sentinel satisfied mid-tick stops the batch with same-tick
    stragglers still queued; the next run must resume exactly where
    the step reference does."""

    for runner in RUNNERS:
        def build(sim):
            evt = Event(sim)
            trace = []

            def proc():
                yield sim.delay(10)
                evt.succeed("fired")
                yield sim.delay(0)
                trace.append("straggler")
                yield sim.delay(7)

            sim.process(proc())
            return evt, trace

        sim = Simulator(scheduler=scheduler)
        evt, trace = build(sim)
        reference = _drive_step(sim, evt)
        ref_tail = ScheduleDigest()
        while sim.peek() is not None:
            ref_tail.update(*sim.step())
        assert trace == ["straggler"]

        sim = Simulator(scheduler=scheduler)
        evt, trace = build(sim)
        digest = ScheduleDigest()
        sim._schedule_hook = digest.update
        if runner == "python" and type(sim) is Simulator:
            assert sim._run_py(evt) == "fired"
        else:
            assert sim.run(until=evt) == "fired"
        assert trace == []          # straggler still queued
        assert digest == reference
        tail = ScheduleDigest()
        sim._schedule_hook = tail.update
        if runner == "python" and type(sim) is Simulator:
            sim._run_py(None)
        else:
            sim.run()
        assert trace == ["straggler"]
        assert tail == ref_tail


# ---------------------------------------------------------------------------
# property: random delay patterns
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    delays=st.lists(
        st.lists(st.integers(min_value=0, max_value=300), min_size=1,
                 max_size=12),
        min_size=1, max_size=6,
    )
)
def test_random_delay_pattern_parity(delays):
    """For arbitrary per-process delay sequences, every loop (both
    schedulers, batched Python, C when built) replays the step
    reference's exact schedule."""

    def build(sim):
        gate = Store(sim)

        def proc(seq, idx):
            for ns in seq:
                yield sim.delay(ns)
            gate.try_put(idx)

        def collector():
            for _ in range(len(delays)):
                yield gate.get()

        for idx, seq in enumerate(delays):
            sim.process(proc(seq, idx))
        return sim.process(collector())

    sim = Simulator()
    reference = _drive_step(sim, build(sim))

    for scheduler in ("heap", "wheel"):
        for runner in RUNNERS:
            sim = Simulator(scheduler=scheduler)
            sentinel = build(sim)
            batched = _drive_batched(sim, runner, until=sentinel)
            assert batched == reference


# ---------------------------------------------------------------------------
# faults on: RNG draw order is part of the schedule
# ---------------------------------------------------------------------------

@BOTH
def test_chaos_cell_parity(scheduler):
    """A fault-injected run draws from a seeded RNG once per injection,
    in event order.  If any loop reordered dispatch, the fault pattern
    (hence retries, hence the whole schedule and every counter) would
    diverge — so digest parity here proves RNG draw order too."""
    from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
    from repro.faults import FaultConfig
    from repro.workloads import PingPong

    faults = FaultConfig(seed=7, drop_prob=0.08, duplicate_prob=0.05,
                         corrupt_prob=0.04, reliable=True)

    def build():
        params = DEFAULT_PARAMS.replace(sim_scheduler=scheduler,
                                        faults=faults)
        workload = PingPong(payload_bytes=32, rounds=10, warmup=2)
        machine = workload.build_machine(params, DEFAULT_COSTS, "cni32qm")
        return machine, workload

    machine, workload = build()
    done = workload.launch(machine)
    reference = _drive_step(machine.sim, done)
    reference.update_snapshot(machine.metrics_snapshot())

    for runner in RUNNERS:
        machine, workload = build()
        done = workload.launch(machine)
        batched = _drive_batched(machine.sim, runner, until=done)
        batched.update_snapshot(machine.metrics_snapshot())
        assert batched == reference, (
            f"{runner} loop reordered a fault-injected schedule"
        )


# ---------------------------------------------------------------------------
# the accelerated loop itself
# ---------------------------------------------------------------------------

def test_accel_escape_hatch_forces_pure_python(monkeypatch):
    """REPRO_ACCEL=0 must keep the extension out of a fresh import."""
    import subprocess
    import sys

    code = (
        "import repro.sim.engine as e; "
        "import sys; sys.exit(0 if e._crun is None else 1)"
    )
    env = {"PYTHONPATH": "src", "PATH": "/usr/bin:/bin", "REPRO_ACCEL": "0"}
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=str(__import__("pathlib").Path(__file__).parents[1]))
    assert proc.returncode == 0


@pytest.mark.skipif(engine._crun is None, reason="accelerated kernel not built")
def test_accel_error_paths_match_python():
    """Exceptions escaping the C loop must leave the kernel reentrant
    (bucket restored, _tick reset) exactly like the Python loop."""
    for runner in RUNNERS:
        sim = Simulator()

        def boomer():
            yield sim.delay(5)
            raise RuntimeError("boom")

        def bystander():
            yield sim.delay(5)
            yield sim.delay(1)
            return sim.now

        sim.process(boomer())
        p = sim.process(bystander())
        with pytest.raises(RuntimeError, match="boom"):
            if runner == "python":
                sim._run_py(None)
            else:
                sim.run()
        assert sim._tick == -1      # insert routing reset
        # The kernel is reentrant after the error: the bystander's
        # same-tick entry survived and still runs.
        if runner == "python":
            sim._run_py(None)
        else:
            sim.run()
        assert p.value == 6
