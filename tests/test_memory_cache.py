"""Unit tests for the direct-mapped MOESI cache."""

import pytest

from repro.config import DEFAULT_PARAMS
from repro.memory import Cache, CoherenceState, MainMemory, MemoryBus
from repro.memory.types import BusOp
from repro.sim import Simulator

M = CoherenceState.MODIFIED
O = CoherenceState.OWNED  # noqa: E741
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741


def make_system(num_caches=1, num_sets=None):
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    bus.set_default_home(MainMemory(DEFAULT_PARAMS))
    caches = [
        Cache(sim, bus, DEFAULT_PARAMS, name=f"cache{i}", num_sets=num_sets)
        for i in range(num_caches)
    ]
    return sim, bus, caches


def run(sim, gen):
    p = sim.process(gen)
    sim.run()
    return p.value


def test_load_miss_installs_exclusive_when_alone():
    sim, _, (cache,) = make_system()
    assert run(sim, cache.load(0x100)) == "miss"
    assert cache.state_of(0x100) is E


def test_load_hit_after_miss():
    sim, _, (cache,) = make_system()
    run(sim, cache.load(0x100))
    assert run(sim, cache.load(0x108)) == "hit"  # same 64B block


def test_store_miss_installs_modified():
    sim, _, (cache,) = make_system()
    assert run(sim, cache.store(0x200)) == "miss"
    assert cache.state_of(0x200) is M


def test_silent_e_to_m_upgrade():
    sim, _, (cache,) = make_system()
    run(sim, cache.load(0x100))
    assert cache.state_of(0x100) is E
    assert run(sim, cache.store(0x100)) == "hit"
    assert cache.state_of(0x100) is M


def test_load_from_other_modified_gives_shared_and_owned():
    sim, bus, (a, b) = make_system(2)
    run(sim, a.store(0x100))
    assert a.state_of(0x100) is M
    result = run(sim, b.load(0x100))
    assert result == "miss"
    assert a.state_of(0x100) is O      # M -> O, still responsible for data
    assert b.state_of(0x100) is S
    assert bus.supplies_from("cache") == 1  # a supplied, not memory


def test_load_from_other_exclusive_downgrades_to_shared():
    sim, _, (a, b) = make_system(2)
    run(sim, a.load(0x100))
    assert a.state_of(0x100) is E
    run(sim, b.load(0x100))
    assert a.state_of(0x100) is S
    assert b.state_of(0x100) is S


def test_store_to_shared_issues_upgrade_and_invalidates_peer():
    sim, bus, (a, b) = make_system(2)
    run(sim, a.load(0x100))
    run(sim, b.load(0x100))
    assert a.state_of(0x100) is S and b.state_of(0x100) is S
    assert run(sim, a.store(0x100)) == "upgrade"
    assert a.state_of(0x100) is M
    assert b.state_of(0x100) is I
    assert bus.transactions(BusOp.UPGRADE) == 1


def test_store_miss_invalidates_owner_who_supplies():
    sim, bus, (a, b) = make_system(2)
    run(sim, a.store(0x100))          # a: M
    run(sim, b.store(0x100))          # BusRdX: a supplies and invalidates
    assert a.state_of(0x100) is I
    assert b.state_of(0x100) is M
    assert bus.supplies_from("cache") == 1


def test_owned_supplier_keeps_owning_on_reads():
    sim, _, (a, b, c) = make_system(3)
    run(sim, a.store(0x100))          # a: M
    run(sim, b.load(0x100))           # a: O, b: S
    run(sim, c.load(0x100))           # a supplies again, stays O
    assert a.state_of(0x100) is O
    assert b.state_of(0x100) is S
    assert c.state_of(0x100) is S


def test_dirty_eviction_writes_back():
    sim, bus, (cache,) = make_system(num_sets=4)
    block = DEFAULT_PARAMS.cache_block_bytes
    conflict = 4 * block                   # maps to set 0, like addr 0
    run(sim, cache.store(0x0))             # set 0 dirty
    run(sim, cache.load(conflict))         # evicts it
    assert bus.transactions(BusOp.WRITEBACK) == 1
    assert cache.state_of(0x0) is I
    assert cache.state_of(conflict) is E


def test_clean_eviction_is_silent():
    sim, bus, (cache,) = make_system(num_sets=4)
    block = DEFAULT_PARAMS.cache_block_bytes
    run(sim, cache.load(0x0))
    run(sim, cache.load(4 * block))
    assert bus.transactions(BusOp.WRITEBACK) == 0


def test_flush_dirty_block():
    sim, bus, (cache,) = make_system()
    run(sim, cache.store(0x100))
    assert run(sim, cache.flush(0x100)) is True
    assert cache.state_of(0x100) is I
    assert bus.transactions(BusOp.WRITEBACK) == 1


def test_flush_absent_block_is_noop():
    sim, bus, (cache,) = make_system()
    assert run(sim, cache.flush(0x100)) is False
    assert bus.transactions() == 0


def test_direct_mapped_conflict_in_small_cache():
    sim, _, (cache,) = make_system(num_sets=2)
    block = DEFAULT_PARAMS.cache_block_bytes
    run(sim, cache.load(0))            # set 0
    run(sim, cache.load(block))        # set 1
    run(sim, cache.load(2 * block))    # set 0, evicts addr 0
    assert cache.state_of(0) is I
    assert cache.state_of(block).is_valid
    assert cache.state_of(2 * block).is_valid
    assert cache.valid_blocks == 2


def test_load_timing_hit_vs_miss():
    sim, _, (cache,) = make_system()
    t0 = sim.now
    run(sim, cache.load(0x100))
    miss_time = sim.now - t0
    t1 = sim.now
    run(sim, cache.load(0x100))
    hit_time = sim.now - t1
    assert hit_time == DEFAULT_PARAMS.cycle_ns
    # miss = 16 addr + 120 memory + 8 data + 1 hit
    assert miss_time == 16 + 120 + 8 + 1


def test_install_and_invalidate_all():
    sim, _, (cache,) = make_system()
    cache.install(0x100, M)
    assert cache.state_of(0x100) is M
    cache.invalidate_all()
    assert cache.state_of(0x100) is I
    assert cache.valid_blocks == 0


def test_counters_track_hits_and_misses():
    sim, _, (cache,) = make_system()
    run(sim, cache.load(0x100))
    run(sim, cache.load(0x100))
    run(sim, cache.store(0x100))
    assert cache.counters["load_miss"] == 1
    assert cache.counters["load_hit"] == 1
    # load installed E; store is a silent upgrade counted as a hit
    assert cache.counters["store_hit"] == 1


def test_cache_geometry_validation():
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    bus.set_default_home(MainMemory(DEFAULT_PARAMS))
    with pytest.raises(ValueError):
        Cache(sim, bus, DEFAULT_PARAMS, num_sets=0)


def test_default_geometry_matches_params():
    sim, _, (cache,) = make_system()
    assert cache.num_sets == DEFAULT_PARAMS.cache_sets
    assert cache.block_bytes == 64
