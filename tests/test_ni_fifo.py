"""Behavioural tests for the fifo-based NIs (CM-5, AP3000, UDMA)."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.memory.bus import BusOp


def run_one_way(ni_name, payload, count=1, params=None, costs=None):
    machine = Machine(params or DEFAULT_PARAMS, costs or DEFAULT_COSTS,
                      ni_name, num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        for _ in range(count):
            yield from node.runtime.send(1, "h", payload)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= count)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    return machine, got


# ------------------------------------------------------------- CM-5

def test_cm5_word_counts_match_message_size():
    # 120 B payload + 8 B header = 128 B = 16 words each way.
    machine, _ = run_one_way("cm5", 120)
    tx = machine.node(0).ni
    rx = machine.node(1).ni
    assert tx.counters["words_pushed"] == 16
    assert rx.counters["words_popped"] == 16


def test_cm5_uses_uncached_accesses_only():
    machine, _ = run_one_way("cm5", 56)
    tx = machine.node(0).ni
    assert tx.counters["uncached_writes"] > 0
    assert tx.counters["block_writes"] == 0
    # All NI traffic is uncached; no coherent traffic was generated.
    assert machine.node(0).bus.transactions(BusOp.READ) == 0


def test_cm5_doorbell_per_message():
    machine, _ = run_one_way("cm5", 8, count=3)
    tx = machine.node(0).ni
    # words (2 per message) + doorbell (1 per message).
    assert tx.counters["uncached_writes"] == 3 * 2 + 3


def test_single_cycle_ni_touches_no_bus():
    machine, _ = run_one_way("cm5-1cyc", 120)
    assert machine.node(0).bus.transactions() == 0
    assert machine.node(1).bus.transactions() == 0


def test_single_cycle_ni_is_faster_than_bus_cm5():
    m_bus, _ = run_one_way("cm5", 120)
    m_reg, _ = run_one_way("cm5-1cyc", 120)
    assert m_reg.sim.now < m_bus.sim.now


# ------------------------------------------------------------- AP3000

def test_ap3000_chunk_counts():
    # 248 B payload + 8 B header = 256 B = 4 chunks of 64 B.
    machine, _ = run_one_way("ap3000", 248)
    tx = machine.node(0).ni
    rx = machine.node(1).ni
    assert tx.counters["chunks_pushed"] == 4
    assert rx.counters["chunks_popped"] == 4
    assert tx.counters["block_writes"] == 4
    assert rx.counters["block_reads"] == 4


def test_ap3000_small_message_single_chunk():
    machine, _ = run_one_way("ap3000", 8)
    assert machine.node(0).ni.counters["chunks_pushed"] == 1


def test_ap3000_beats_cm5_on_large_messages():
    m_cm5, _ = run_one_way("cm5", 248)
    m_ap, _ = run_one_way("ap3000", 248)
    assert m_ap.sim.now < m_cm5.sim.now


# ------------------------------------------------------------- UDMA

def test_udma_small_messages_fall_back_to_word_path():
    machine, _ = run_one_way("udma", 56)   # below the 96 B threshold
    tx = machine.node(0).ni
    assert tx.counters["udma_sends"] == 0
    assert tx.counters["words_pushed"] > 0


def test_udma_large_messages_use_udma():
    machine, _ = run_one_way("udma", 200)  # above the 96 B threshold
    tx = machine.node(0).ni
    rx = machine.node(1).ni
    assert tx.counters["udma_sends"] == 1
    assert rx.counters["udma_receives"] == 1
    assert tx.counters["words_pushed"] == 0
    # 208 B = 4 blocks read coherently from the sender's cache.
    assert tx.counters["udma_blocks_read"] == 4
    assert rx.counters["udma_blocks_written"] == 4


def test_udma_threshold_respects_costs():
    costs = DEFAULT_COSTS.replace(udma_threshold=32)
    machine, _ = run_one_way("udma", 56, costs=costs)
    assert machine.node(0).ni.counters["udma_sends"] == 1


def test_udma_always_mode_forces_udma_for_small():
    from repro.ni.udma import UdmaNI
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "udma", num_nodes=2)
    for node in machine:
        node.ni.always_udma = True
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        yield from node.runtime.send(1, "h", 8)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: got)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert machine.node(0).ni.counters["udma_sends"] == 1


def test_udma_sender_cache_supplies_dma_reads():
    machine, _ = run_one_way("udma", 200)
    # The NI's coherent reads were supplied by the processor cache.
    assert machine.node(0).bus.supplies_from("cache") >= 4


def test_udma_receive_lands_in_memory():
    machine, _ = run_one_way("udma", 200)
    rx_bus = machine.node(1).bus
    # The consuming processor's reads missed to main memory.
    assert rx_bus.supplies_from("memory") >= 4


# ------------------------------------------------------------- buffering

@pytest.mark.parametrize("ni_name", ["cm5", "ap3000", "udma"])
def test_fifo_ni_receive_buffer_freed_by_processor_pop(ni_name):
    machine, _ = run_one_way(ni_name, 56, count=3)
    rx = machine.node(1).ni
    assert rx.fcu.recv_buffers.in_use == 0
    assert rx.fcu.pending_inbound == 0


def test_fifo_ni_send_blocks_and_attributes_buffering():
    # fcb=1 and a receiver that consumes slowly: the sender must stall
    # on flow control and account it as "buffering" time.
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, "cm5", num_nodes=2)
    got = []

    def slow_handler(rt, msg):
        got.append(msg)
        yield from rt.node.compute(20_000)

    machine.node(1).runtime.register_handler("h", slow_handler)

    def sender(node):
        for _ in range(4):
            yield from node.runtime.send(1, "h", 56)
        node.finish()

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 4)

    done = machine.sim.process(sender(machine.node(0)))
    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert machine.node(0).timer.total("buffering") > 0
