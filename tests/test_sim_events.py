"""Unit tests for events, conditions, and failure propagation."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.events import SimulationError


def test_event_lifecycle_flags():
    sim = Simulator()
    evt = sim.event()
    assert not evt.triggered and not evt.processed and evt.ok is None
    evt.succeed(42)
    assert evt.triggered and not evt.processed and evt.ok is True
    sim.run()
    assert evt.processed
    assert evt.value == 42


def test_double_trigger_is_an_error():
    sim = Simulator()
    evt = sim.event()
    evt.succeed()
    with pytest.raises(SimulationError):
        evt.succeed()
    with pytest.raises(SimulationError):
        evt.fail(RuntimeError("x"))


def test_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_succeed_with_delay():
    sim = Simulator()
    evt = sim.event()

    def waiter():
        value = yield evt
        return (sim.now, value)

    p = sim.process(waiter())
    evt.succeed("late", delay=30)
    sim.run()
    assert p.value == (30, "late")


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    evt = sim.event()
    caught = []

    def waiter():
        try:
            yield evt
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    evt.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unconsumed_failure_crashes_simulation():
    sim = Simulator()
    evt = sim.event()
    evt.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        sim.run()


def test_callback_on_processed_event_runs_immediately():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("v")
    sim.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_all_of_collects_all_values():
    sim = Simulator()
    t1 = sim.timeout(5, value="a")
    t2 = sim.timeout(10, value="b")

    def waiter():
        values = yield AllOf(sim, [t1, t2])
        return values

    p = sim.process(waiter())
    sim.run()
    assert p.value == {t1: "a", t2: "b"}
    assert sim.now == 10


def test_any_of_fires_on_first():
    sim = Simulator()
    fast = sim.timeout(3, value="fast")
    slow = sim.timeout(100, value="slow")

    def waiter():
        values = yield AnyOf(sim, [fast, slow])
        return (sim.now, values)

    p = sim.process(waiter())
    sim.run()
    when, values = p.value
    assert when == 3
    assert values == {fast: "fast"}


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_all_of_propagates_failure():
    sim = Simulator()
    good = sim.timeout(5)
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield AllOf(sim, [good, bad])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    bad.fail(ValueError("broken"), delay=1)
    sim.run()
    assert caught == ["broken"]


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield "not an event"

    p = sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()
    assert p.ok is False
