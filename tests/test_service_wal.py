"""WAL durability properties: idempotent replay, crash tolerance,
atomic rotation, and the never-double-complete guarantee.

The hypothesis strategies generate arbitrary record streams (valid
submissions interleaved with duplicate, stale, and orphan records) and
arbitrary crash points (byte-level log truncation); the properties
assert the invariants the job server's recovery story rests on.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wal import (
    DONE,
    PENDING,
    QUARANTINED,
    QueueState,
    ServiceWAL,
)

# ------------------------------------------------ record strategies

_LABELS = ["a", "b", "c", "d"]
_SWEEPS = ["s1", "s2"]


def _spec(label):
    # The WAL never interprets specs; any JSON tree is a valid payload.
    return {"label": label, "ni": "x", "payload": 1}


_submits = st.builds(
    lambda sweep, tenant, weight, labels: {
        "op": "submit", "sweep": sweep, "tenant": tenant,
        "weight": weight,
        "cells": [{"label": l, "spec": _spec(l)} for l in labels],
    },
    sweep=st.sampled_from(_SWEEPS),
    tenant=st.sampled_from(["t1", "t2"]),
    weight=st.integers(min_value=1, max_value=5),
    labels=st.lists(st.sampled_from(_LABELS), min_size=1, max_size=4,
                    unique=True),
)

_completes = st.builds(
    lambda sweep, label, cached: {
        "op": "complete", "sweep": sweep, "label": label,
        "key": f"key-{label}", "cached": cached, "elapsed_ns": 10,
    },
    sweep=st.sampled_from(_SWEEPS),
    label=st.sampled_from(_LABELS),
    cached=st.booleans(),
)

_fails = st.builds(
    lambda sweep, label, kind: {
        "op": "fail", "sweep": sweep, "label": label,
        "error": "boom", "kind": kind,
    },
    sweep=st.sampled_from(_SWEEPS),
    label=st.sampled_from(_LABELS),
    kind=st.sampled_from(["lease_expired", "worker_error",
                          "delivery_failure"]),
)

_quarantines = st.builds(
    lambda sweep, label: {
        "op": "quarantine", "sweep": sweep, "label": label,
        "report": {"attempts": 3},
    },
    sweep=st.sampled_from(_SWEEPS),
    label=st.sampled_from(_LABELS),
)

_records = st.lists(
    st.one_of(_submits, _completes, _fails, _quarantines),
    min_size=0, max_size=40,
)


def _fold(records):
    state = QueueState()
    for record in records:
        state.apply(record)
    return state


# ------------------------------------------------ replay idempotence


def _effective_log(records):
    """What a ServiceWAL would actually persist: no-op records (orphan
    completions, duplicate submits, late failures) never reach disk,
    so a durable log is always causally ordered, and ``fail`` records
    are attempt-stamped so their replay is a no-op.  Hypothesis found
    that the prefix-replay property genuinely needs both: an *orphan*
    quarantine replayed after a later submit would apply on the second
    pass (why ``ServiceWAL.append`` refuses to log no-ops), and a
    replayed raw ``fail`` would double-count the attempt (why durable
    fail records carry the attempt index — ``ServiceWAL.stamp``)."""
    state = QueueState()
    out = []
    for record in records:
        record = ServiceWAL.stamp(record, state)
        if state.apply(record):
            out.append(record)
    return out


@given(records=_records, prefix=st.integers(min_value=0, max_value=40),
       repeats=st.integers(min_value=1, max_value=3))
@settings(max_examples=100, deadline=None)
def test_replay_any_prefix_any_number_of_times_is_idempotent(
        records, prefix, repeats):
    """Folding any prefix of the durable log (even several times over)
    before the full log yields exactly the state of folding the log
    once — the property that makes stale older segments after a
    crashed rotation harmless."""
    log = _effective_log(records)
    reference = _fold(log)
    noisy = log[:prefix] * repeats + log
    assert _fold(noisy) == reference


@given(records=_records)
@settings(max_examples=100, deadline=None)
def test_replay_never_double_completes(records):
    """No interleaving of duplicate completions, late failures, and
    quarantines can complete a cell twice or resurrect a settled one:
    every cell ends in exactly one terminal state, and the sum of
    effective transitions per cell is bounded by one settle."""
    state = QueueState()
    settled_order = {}  # (sweep, label) -> first terminal status
    for record in records:
        changed = state.apply(record)
        if record["op"] in ("complete", "quarantine") and changed:
            key = (record["sweep"], record["label"])
            assert key not in settled_order, "cell settled twice"
            settled_order[key] = record["op"]
    for sweep in state.sweeps.values():
        for cell in sweep.cells.values():
            key = (sweep.sweep, cell.label)
            if cell.status == DONE:
                assert settled_order.get(key) == "complete"
            elif cell.status == QUARANTINED:
                assert settled_order.get(key) == "quarantine"
            else:
                assert key not in settled_order


@given(records=_records, rotate=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_wal_roundtrip_through_disk_with_rotation(tmp_path_factory,
                                                  records, rotate):
    """Appending through a ServiceWAL (with rotation snapshots firing
    mid-stream) and replaying the directory reproduces the in-memory
    fold exactly."""
    root = str(tmp_path_factory.mktemp("wal"))
    reference = _fold(records)
    with ServiceWAL(root, rotate_records=rotate, fsync=False) as wal:
        for record in records:
            wal.append(record)
        live = wal.state
        assert live == reference
    assert ServiceWAL.read_state(root) == reference
    # And a full writer-side recovery agrees too.
    with ServiceWAL(root, rotate_records=rotate, fsync=False) as again:
        assert again.state == reference
        assert again.records_dropped == 0


@given(records=_records, cut=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_crash_at_any_byte_recovers_a_valid_prefix(tmp_path_factory,
                                                   records, cut):
    """Truncating the live segment at an arbitrary byte (the on-disk
    image of a kill -9 mid-append) recovers the state of some prefix
    of the effective records — never an error, never an invented
    transition."""
    root = str(tmp_path_factory.mktemp("wal"))
    effective = []
    with ServiceWAL(root, rotate_records=10_000, fsync=False) as wal:
        for record in records:
            if wal.append(record):
                effective.append(record)
    path = os.path.join(root, "wal-000001.jsonl")
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(min(cut, size))
    recovered = ServiceWAL(root, rotate_records=10_000, fsync=False)
    try:
        candidates = [
            _fold(effective[:k]) for k in range(len(effective) + 1)
        ]
        assert any(recovered.state == c for c in candidates)
        assert recovered.records_dropped <= 1
    finally:
        recovered.close()


# ------------------------------------------------ directed cases


def test_duplicate_submit_is_acknowledged_not_duplicated(tmp_path):
    wal = ServiceWAL(str(tmp_path), fsync=False)
    record = {"op": "submit", "sweep": "s", "tenant": "t", "weight": 1,
              "cells": [{"label": "a", "spec": {}}]}
    assert wal.append(record) is True
    assert wal.append(dict(record)) is False  # no-op, not even logged
    wal.close()
    lines = open(tmp_path / "wal-000001.jsonl").read().splitlines()
    assert len(lines) == 1


def test_duplicate_completion_counted_and_ignored(tmp_path):
    wal = ServiceWAL(str(tmp_path), fsync=False)
    wal.append({"op": "submit", "sweep": "s", "cells":
                [{"label": "a", "spec": {}}]})
    done = {"op": "complete", "sweep": "s", "label": "a",
            "key": "k", "cached": False, "elapsed_ns": 5}
    assert wal.append(done) is True
    assert wal.append(dict(done)) is False
    assert wal.state.duplicate_completions == 1
    cell = wal.state.cell("s", "a")
    assert cell.status == DONE and cell.key == "k"
    wal.close()


def test_orphan_records_are_ignored_and_counted(tmp_path):
    wal = ServiceWAL(str(tmp_path), fsync=False)
    assert wal.append({"op": "complete", "sweep": "ghost", "label": "x",
                       "key": None}) is False
    assert wal.state.orphan_records == 1
    wal.close()


def test_fail_then_quarantine_state_machine(tmp_path):
    wal = ServiceWAL(str(tmp_path), fsync=False)
    wal.append({"op": "submit", "sweep": "s", "cells":
                [{"label": "a", "spec": {}}]})
    for i in range(3):
        wal.append({"op": "fail", "sweep": "s", "label": "a",
                    "error": f"e{i}", "kind": "worker_error"})
    cell = wal.state.cell("s", "a")
    assert cell.attempts == 3 and cell.errors == ["e0", "e1", "e2"]
    wal.append({"op": "quarantine", "sweep": "s", "label": "a",
                "report": {"attempts": 3}})
    assert wal.state.cell("s", "a").status == QUARANTINED
    # Late records against the settled cell are all no-ops.
    assert wal.append({"op": "fail", "sweep": "s", "label": "a",
                       "error": "late", "kind": "worker_error"}) is False
    assert wal.append({"op": "complete", "sweep": "s", "label": "a",
                       "key": "k"}) is False
    assert wal.state.cell("s", "a").status == QUARANTINED
    wal.close()


def test_rotation_snapshot_is_atomic_and_gcs_old_segments(tmp_path):
    wal = ServiceWAL(str(tmp_path), rotate_records=3, fsync=False)
    for i in range(10):
        wal.append({"op": "submit", "sweep": f"s{i}", "cells":
                    [{"label": "a", "spec": {}}]})
    assert wal.rotations >= 2
    segments = ServiceWAL.segments(str(tmp_path))
    assert len(segments) == 1  # old segments collected
    first_line = json.loads(
        open(segments[0][1]).readline()
    )
    assert first_line["op"] == "snapshot"
    assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
    state = wal.state
    wal.close()
    assert ServiceWAL.read_state(str(tmp_path)) == state


def test_torn_tail_is_dropped_and_counted(tmp_path):
    wal = ServiceWAL(str(tmp_path), fsync=False)
    wal.append({"op": "submit", "sweep": "s", "cells":
                [{"label": "a", "spec": {}}]})
    wal.close()
    with open(tmp_path / "wal-000001.jsonl", "a") as fh:
        fh.write('{"op": "complete", "sweep": "s", "lab')  # torn
    recovered = ServiceWAL(str(tmp_path), fsync=False)
    assert recovered.records_dropped == 1
    assert recovered.state.cell("s", "a").status == PENDING
    # The writer can keep appending past the torn tail.
    assert recovered.append({"op": "complete", "sweep": "s",
                             "label": "a", "key": "k"}) is True
    recovered.close()
    final = ServiceWAL.read_state(str(tmp_path))
    assert final.cell("s", "a").status == DONE


def test_replayed_fail_record_does_not_double_count_attempts(tmp_path):
    """Regression (found by hypothesis): the durable form of a fail
    record is attempt-stamped, so folding a stale prefix containing it
    twice leaves attempts/errors exactly as folding it once."""
    wal = ServiceWAL(str(tmp_path), fsync=False)
    wal.append({"op": "submit", "sweep": "s", "cells":
                [{"label": "a", "spec": {}}]})
    assert wal.append({"op": "fail", "sweep": "s", "label": "a",
                       "error": "boom", "kind": "lease_expired"}) is True
    wal.close()
    line = open(tmp_path / "wal-000001.jsonl").read().splitlines()[1]
    stamped = json.loads(line)
    assert stamped["attempt"] == 1
    state = QueueState()
    for record in [json.loads(l) for l in
                   open(tmp_path / "wal-000001.jsonl")] + [stamped]:
        state.apply(record)
    cell = state.cell("s", "a")
    assert cell.attempts == 1 and cell.errors == ["boom"]
    assert state.stale_failures == 1


def test_snapshot_schema_mismatch_refused():
    with pytest.raises(ValueError, match="schema"):
        QueueState.from_jsonable({"schema": 999, "sweeps": [],
                                  "duplicate_completions": 0,
                                  "orphan_records": 0})


def test_rotate_records_floor():
    with pytest.raises(ValueError):
        ServiceWAL("/tmp/unused-wal-root", rotate_records=1)
