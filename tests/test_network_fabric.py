"""Unit tests for the abstract constant-latency fabric."""

import pytest

from repro.config import DEFAULT_PARAMS
from repro.network import Message, MessageKind, Network
from repro.sim import Simulator


def make_net(nodes=2):
    sim = Simulator()
    net = Network(sim, DEFAULT_PARAMS)
    data, control = [], []
    for n in range(nodes):
        def on_data(msg, n=n):
            data.append((sim.now, n, msg))

        def on_control(msg, n=n):
            control.append((sim.now, n, msg))

        net.register(n, on_data, on_control)
    return sim, net, data, control


def test_delivery_after_constant_latency():
    sim, net, data, _ = make_net()
    msg = Message(src=0, dst=1, size=64)
    net.inject(msg)
    sim.run()
    when, node, delivered = data[0]
    assert when == DEFAULT_PARAMS.network_latency_ns == 40
    assert node == 1 and delivered is msg
    assert msg.sent_at == 0


def test_control_messages_route_to_control_hook():
    sim, net, data, control = make_net()
    net.inject(Message(src=0, dst=1, size=8, kind=MessageKind.ACK))
    sim.run()
    assert data == []
    assert len(control) == 1


def test_return_messages_route_to_control_hook():
    sim, net, data, control = make_net()
    inner = Message(src=1, dst=0, size=64)
    net.inject(Message(src=0, dst=1, size=64, kind=MessageKind.RETURN, body=inner))
    sim.run()
    assert data == []
    assert control[0][2].body is inner


def test_oversized_message_rejected():
    sim, net, _, _ = make_net()
    with pytest.raises(ValueError, match="fragment"):
        net.inject(Message(src=0, dst=1, size=257))


def test_unknown_destination_rejected():
    sim, net, _, _ = make_net()
    with pytest.raises(ValueError, match="not registered"):
        net.inject(Message(src=0, dst=99, size=64))


def test_duplicate_registration_rejected():
    sim, net, _, _ = make_net()
    with pytest.raises(ValueError):
        net.register(0, lambda m: None, lambda m: None)


def test_in_flight_messages_do_not_interfere():
    sim, net, data, _ = make_net(nodes=4)
    for dst in (1, 2, 3):
        net.inject(Message(src=0, dst=dst, size=64))
    sim.run()
    assert sorted(node for _, node, _ in data) == [1, 2, 3]
    assert all(when == 40 for when, _, _ in data)


def test_counters():
    sim, net, _, _ = make_net()
    net.inject(Message(src=0, dst=1, size=64))
    net.inject(Message(src=0, dst=1, size=8, kind=MessageKind.ACK))
    sim.run()
    assert net.counters["injected"] == 2
    assert net.counters["delivered"] == 2
    assert net.counters["data_bytes"] == 64  # acks don't count
    assert net.counters["kind:am"] == 1
    assert net.counters["kind:ack"] == 1


def test_node_ids_sorted():
    sim, net, _, _ = make_net(nodes=3)
    assert net.node_ids == (0, 1, 2)
