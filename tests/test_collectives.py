"""Collectives as first-class scenarios: every transfer op on every
NI through the api facade, the sweep workloads, span partitioning of
op time, and --jobs determinism of the collectives experiment."""

import pytest

from repro import ALL_NI_NAMES, api
from repro.experiments import collectives
from repro.experiments.parallel import SweepExecutor
from repro.workloads import COLLECTIVE_NAMES
from repro.workloads.registry import create, names

#: Cheap per-op configs: every op completes in well under a second.
QUICK_OPS = {
    "barrier": {},
    "bcast": {"payload": 256},
    "reduce": {"payload": 128},
    "put": {"payload": 256},
    "get": {"payload": 256},
}


# -- every op on every NI ----------------------------------------------


@pytest.mark.parametrize("ni", ALL_NI_NAMES)
@pytest.mark.parametrize("op", sorted(QUICK_OPS))
def test_every_op_on_every_ni(op, ni):
    result = api.run_collective(
        op, ni=ni, nodes=4, rounds=2, **QUICK_OPS[op],
    )
    extras = result.workload.extras
    assert extras["op_latency_us"] > 0
    assert extras["rounds"] == 2
    assert result.metrics["node0.ni.messages_sent"] > 0
    fractions = result.breakdown()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


def test_collectives_deterministic_per_config():
    a = api.run_collective("bcast", ni="ap3000", nodes=8, payload=1024)
    b = api.run_collective("bcast", ni="ap3000", nodes=8, payload=1024)
    assert a.elapsed_us == b.elapsed_us
    assert a.metrics == b.metrics


# -- sweep workloads ----------------------------------------------------


def test_sweeps_are_registered():
    assert set(COLLECTIVE_NAMES) <= set(names())
    assert set(COLLECTIVE_NAMES) <= set(api.list_workloads())


def test_sweep_workloads_validate_inputs():
    with pytest.raises(ValueError):
        create("barrier_sweep", nodes=0)
    with pytest.raises(ValueError):
        create("bcast_sweep", rounds=0)
    with pytest.raises(ValueError):
        create("putget_sweep", mode="teleport")
    with pytest.raises(ValueError):
        create("putget_sweep", nodes=1)


def test_putget_sweep_runs_both_modes():
    for mode in ("put", "get"):
        result = api.run_workload(
            ni="cni512q",
            workload=api.Spec("putget_sweep", mode=mode, nodes=4,
                              rounds=2, payload=512),
            num_nodes=4,
        )
        extras = result.workload.extras
        assert extras["op"].startswith(mode)
        assert extras["goodput_mb_s"] > 0


def test_strided_sweep_default_payload_discriminates():
    result = api.run_workload(
        ni="cni32qm", workload=api.Spec("strided_sweep", nodes=2, rounds=2),
        num_nodes=2,
    )
    assert result.machine.transfer.counters["ni_gathers"] > 0


# -- spans partition op time -------------------------------------------


@pytest.mark.parametrize("op", ["barrier", "put"])
def test_spans_partition_collective_latency(op):
    result = api.run_collective(
        op, ni="cni32qm", nodes=4, rounds=2, spans=True, **QUICK_OPS[op],
    )
    spans = result.spans
    assert spans, "span recording produced no completed spans"
    for span in spans:
        durations = span.phase_durations()
        assert sum(durations.values()) == span.latency_ns()
        assert all(ns >= 0 for ns in durations.values())


# -- the collectives experiment ----------------------------------------


def test_collectives_plan_covers_the_grid():
    jobs, keys = collectives.plan(quick=True)
    assert len(jobs) == len(ALL_NI_NAMES) * len(collectives.OP_CELLS)
    assert len(set(job.label for job in jobs)) == len(jobs)
    assert {ni for ni, _ in keys} == set(ALL_NI_NAMES)


def test_collectives_jobs_1_equals_jobs_4():
    """The ISSUE's determinism gate: byte-identical cells at any --jobs."""
    jobs, _ = collectives.plan(quick=True)
    serial = SweepExecutor(jobs=1, cache=None).map(jobs)
    parallel = SweepExecutor(jobs=4, cache=None).map(jobs)
    assert [c.label for c in serial] == [j.label for j in jobs]
    assert serial == parallel


def test_collectives_experiment_ranks_all_nis():
    executor = SweepExecutor(jobs=1, cache=None)
    result = collectives.run(quick=True, executor=executor)
    assert len(result.rows) == len(ALL_NI_NAMES)
    ranks = [row[0] for row in result.rows]
    assert ranks == sorted(ranks)
    # The best NI normalises to 1.00x and coherent beats fifo overall.
    assert result.rows[0][2] == "1.00x"
    best = result.extras["ranking"][0]["ni"]
    worst = result.extras["ranking"][-1]["ni"]
    assert best.startswith("cni")
    assert worst in ("cm5", "udma", "ap3000")
    assert "collectives" in result.experiment
