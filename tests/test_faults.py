"""Tests for the fault-injection subsystem and the reliable-delivery
layer (``repro.faults`` + the flow-control reliability hooks).

The load-bearing invariants:

- faults off (``params.faults is None``) leaves behaviour untouched;
  an all-zero fault config is indistinguishable from no config;
- a seeded fault stream is deterministic: identical runs produce
  identical timings and counters;
- the reliability protocol recovers from drops, corruption and
  duplication (at-most-once handler delivery);
- unrecoverable runs *fail loudly*: the watchdog converts silent
  livelock into a structured :class:`DeliveryFailure`.
"""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.faults import DeliveryFailure, FaultConfig
from repro.workloads import PingPong, StreamBandwidth
from repro.workloads.base import Workload


def _pingpong(rounds=12, **cfg_kwargs):
    """A small ping-pong run under the given fault knobs.

    Returns ``(result, machine)`` so tests can inspect counters.
    """
    faults = FaultConfig(**cfg_kwargs) if cfg_kwargs else None
    params = DEFAULT_PARAMS.replace(faults=faults)
    workload = PingPong(payload_bytes=32, rounds=rounds, warmup=2)
    machine = workload.build_machine(params, DEFAULT_COSTS, "cm5")
    result = workload.run(machine)
    return result, machine


def _fcu_counter(machine, name):
    return sum(node.ni.fcu.counters[name] for node in machine.nodes)


# ------------------------------------------------------------- config

def test_fault_config_validates_probabilities():
    with pytest.raises(ValueError):
        FaultConfig(drop_prob=1.5).validate()
    with pytest.raises(ValueError):
        FaultConfig(corrupt_prob=-0.1).validate()
    with pytest.raises(ValueError):
        FaultConfig(retry_budget=0).validate()
    with pytest.raises(ValueError):
        FaultConfig(retry_timeout_ns=8000, retry_timeout_cap_ns=4000).validate()
    FaultConfig().validate()  # defaults are valid


def test_fault_config_any_faults():
    assert not FaultConfig().any_faults
    assert FaultConfig(drop_prob=0.1).any_faults
    assert FaultConfig(lockup_prob=0.1).any_faults


def test_params_reject_faults_with_topology():
    cfg = DEFAULT_PARAMS.replace(
        faults=FaultConfig(drop_prob=0.1), network_topology="mesh",
    )
    with pytest.raises(ValueError):
        cfg.validate()


# ------------------------------------------------- faults-off identity

def test_zero_fault_config_matches_no_config():
    """All-zero probabilities + unreliable mode == no fault config.

    The hooks must be behaviourally absent, not merely quiet: an
    unconfigured fault class draws nothing from the RNG and adds no
    events, so the timeline is identical tick for tick.
    """
    clean, clean_m = _pingpong()
    zero, zero_m = _pingpong(seed=99, reliable=False, watchdog=False)
    assert zero.elapsed_ns == clean.elapsed_ns
    assert zero.messages_sent == clean.messages_sent
    assert zero.bounces == clean.bounces
    assert _fcu_counter(zero_m, "retransmits") == 0
    assert dict(zero_m.faults.counters.as_dict()) == {}


# --------------------------------------------------------- determinism

def test_faulty_run_is_deterministic():
    knobs = dict(seed=7, drop_prob=0.2, ack_drop_prob=0.1,
                 corrupt_prob=0.05, duplicate_prob=0.05,
                 reliable=True, watchdog=True)
    a, a_m = _pingpong(**knobs)
    b, b_m = _pingpong(**knobs)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.extras["round_trip_ns"] == b.extras["round_trip_ns"]
    assert a_m.faults.counters.as_dict() == b_m.faults.counters.as_dict()
    assert a_m.metrics_snapshot() == b_m.metrics_snapshot()


def test_different_seed_different_stream():
    knobs = dict(drop_prob=0.25, reliable=True)
    a, a_m = _pingpong(seed=1, **knobs)
    b, b_m = _pingpong(seed=2, **knobs)
    # Both complete; the fault streams (and hence timings) differ.
    assert (a.elapsed_ns, a_m.faults.counters["dropped"]) != (
        b.elapsed_ns, b_m.faults.counters["dropped"])


# ------------------------------------------------------------ recovery

def test_drop_recovery_via_retransmit():
    result, machine = _pingpong(seed=11, drop_prob=0.3, reliable=True)
    assert machine.faults.counters["dropped"] > 0
    assert _fcu_counter(machine, "retransmits") > 0
    assert result.extras["round_trip_ns"] > 0
    # Every retransmitted message was eventually acked: nothing left
    # outstanding and all send buffers returned.
    for node in machine.nodes:
        assert node.ni.fcu.outstanding_count == 0
        assert node.ni.fcu.send_buffers_in_use == 0


def test_corrupt_recovery():
    result, machine = _pingpong(seed=3, corrupt_prob=0.3, reliable=True)
    assert machine.faults.counters["corrupted"] > 0
    assert _fcu_counter(machine, "corrupt_dropped") > 0
    assert _fcu_counter(machine, "retransmits") > 0
    assert result.elapsed_ns > 0


def test_duplicate_suppression_at_most_once():
    result, machine = _pingpong(rounds=20, seed=5, duplicate_prob=0.4,
                                reliable=True)
    assert machine.faults.counters["duplicated"] > 0
    assert _fcu_counter(machine, "dup_suppressed") > 0
    # At-most-once delivery: the workload saw exactly `rounds + warmup`
    # pongs despite the fabric delivering extra copies.
    assert result.extras["round_trip_ns"] > 0


def test_stall_lockup_pause_smoke():
    result, machine = _pingpong(
        rounds=15, seed=13, stall_prob=0.3, stall_ns=500,
        lockup_prob=0.3, lockup_ns=800, pause_prob=0.2, pause_ns=600,
        reliable=True,
    )
    counters = machine.faults.counters
    assert counters["stalls"] + counters["lockups"] + counters["pauses"] > 0
    assert result.elapsed_ns > 0


# ------------------------------------------------- structured failure

def test_watchdog_fires_on_lost_ack_deadlock():
    """Unreliable mode + 100% ack drop wedges the sender (send buffers
    never come back); the watchdog must turn the livelock into a
    structured report instead of spinning forever."""
    with pytest.raises(DeliveryFailure) as exc_info:
        _pingpong(seed=1, ack_drop_prob=1.0, reliable=False,
                  watchdog=True, watchdog_quiet_ns=50_000)
    report = exc_info.value.report
    assert report["reason"] == "no_progress"
    assert report["schema"] == 1
    assert any(n["send_buffers_in_use"] > 0 for n in report["nodes"])


def test_retry_budget_exhaustion_reported():
    """100% drop burns the retry budget; the failed sends appear in
    the report with their attempt counts."""
    with pytest.raises(DeliveryFailure) as exc_info:
        _pingpong(seed=1, drop_prob=1.0, reliable=True,
                  retry_timeout_ns=500, retry_timeout_cap_ns=2000,
                  retry_budget=2, watchdog=True, watchdog_quiet_ns=60_000)
    report = exc_info.value.report
    assert report["failed"], "exhausted sends must be listed"
    assert all(f["attempts"] >= 2 for f in report["failed"])
    assert report["fault_counters"]["delivery_failures"] >= 1


def test_quiescent_run_converted_to_delivery_failure():
    """A drained event queue before completion (true deadlock, not
    livelock) is converted from SimulationError to DeliveryFailure
    when faults are configured."""

    class Stuck(Workload):
        name = "stuck"
        num_nodes = 2

        def node_main(self, machine, node):
            if node.node_id == 0:
                yield machine.sim.event()  # never succeeds

    params = DEFAULT_PARAMS.replace(
        faults=FaultConfig(watchdog=False))
    with pytest.raises(DeliveryFailure) as exc_info:
        Stuck().run(params=params, costs=DEFAULT_COSTS, ni_name="cm5")
    assert exc_info.value.report["reason"] == "quiescent"


# --------------------------------------------- bounce-storm liveness

def test_bounce_storm_single_buffer_receiver_drains():
    """Regression: a 1-buffer receiver under sustained streaming load
    must still drain — bounce retry backoff is capped (a message that
    has bounced many times keeps retrying at the cap rather than
    backing off forever)."""
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    workload = StreamBandwidth(payload_bytes=256, transfers=40, warmup=2)
    machine = workload.build_machine(params, DEFAULT_COSTS, "cm5")
    result = workload.run(machine)
    assert result.bounces > 0, "1-buffer receiver must bounce under load"
    assert result.extras["bandwidth_mb_s"] > 0
    for node in machine.nodes:
        assert node.ni.fcu.send_buffers_in_use == 0


def test_retransmits_attributed_in_latency_decomposition():
    """Spans annotate retransmissions and the latency report carries
    them — recovery cost is attributed, not invisible."""
    from repro.analysis import decompose, latency_report

    faults = FaultConfig(seed=11, drop_prob=0.3, reliable=True)
    params = DEFAULT_PARAMS.replace(spans=True, faults=faults)
    workload = PingPong(payload_bytes=32, rounds=12, warmup=2)
    machine = workload.build_machine(params, DEFAULT_COSTS, "cm5")
    workload.run(machine)
    spans = machine.spans_jsonable()
    d = decompose(spans, label="faulty")
    assert d.retransmits > 0
    assert d.retransmits == _fcu_counter(machine, "retransmits")
    report = latency_report([("faulty", spans)])
    assert "rexmit" in report
    # Fault-free populations keep the original report shape.
    clean_machine = PingPong(payload_bytes=32, rounds=4, warmup=1)
    m = clean_machine.build_machine(
        DEFAULT_PARAMS.replace(spans=True), DEFAULT_COSTS, "cm5")
    clean_machine.run(m)
    assert "rexmit" not in latency_report([("clean", m.spans_jsonable())])


def test_bounce_retry_delay_is_capped():
    from repro.network import Message
    from repro.network.flowcontrol import MAX_BACKOFF_BOUNCES

    workload = PingPong(rounds=1, warmup=0)
    machine = workload.build_machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5")
    fcu = machine.node(0).ni.fcu
    msg = Message(src=0, dst=1, size=32)
    delays = []
    for bounces in range(1, MAX_BACKOFF_BOUNCES + 10):
        msg.bounces = bounces
        delays.append(fcu.retry_delay(msg))
    assert delays == sorted(delays)
    # Beyond the cap the delay stops growing.
    assert len(set(delays[MAX_BACKOFF_BOUNCES - 1:])) == 1
