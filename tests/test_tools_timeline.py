"""Tests for the message-timeline tool."""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.tools import format_timeline, message_timeline
from repro.tools.timeline import sent_message_uids


def run_traced(ni_name="cni32qm", payload=56, fcb=8):
    params = DEFAULT_PARAMS.replace(tracing=True, flow_control_buffers=fcb)
    machine = Machine(params, DEFAULT_COSTS, ni_name, num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        yield from node.runtime.send(1, "h", payload)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: got)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    return machine, got[0].uid


def test_timeline_covers_full_life_cycle():
    machine, uid = run_traced()
    categories = [r.category for r in message_timeline(machine, uid)]
    for expected in ("send_start", "wire", "accept", "extracted",
                     "handler_start", "handler_done"):
        assert expected in categories, expected
    # Time-ordered, send first, handler completion last.
    times = [r.time for r in message_timeline(machine, uid)]
    assert times == sorted(times)
    assert categories[0] == "send_start"
    assert categories[-1] == "handler_done"


def test_timeline_records_bounces_under_pressure():
    params = DEFAULT_PARAMS.replace(tracing=True, flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, "cm5", num_nodes=2)
    got = []

    def slow(rt, msg):
        got.append(msg)
        yield from rt.node.compute(5_000)

    machine.node(1).runtime.register_handler("h", slow)

    def sender(node):
        for _ in range(6):
            yield from node.runtime.send(1, "h", 56)
        yield from node.runtime.wait_for(lambda: len(got) >= 6)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 6)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    all_categories = {
        r.category for r in machine.network.tracer.records
    }
    assert "bounce" in all_categories


def test_format_timeline_readable():
    machine, uid = run_traced()
    text = format_timeline(machine, uid)
    assert f"uid={uid}" in text
    assert "handler complete" in text
    assert "total:" in text


def test_format_timeline_without_tracing_explains():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=2)
    text = format_timeline(machine, 12345)
    assert "tracing=True" in text


def test_sent_message_uids_filters_by_node():
    machine, uid = run_traced()
    assert uid in sent_message_uids(machine)
    assert uid in sent_message_uids(machine, node_id=0)
    assert uid not in sent_message_uids(machine, node_id=1)


def test_tracing_disabled_by_default_costs_nothing():
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cm5", num_nodes=2)
    assert len(machine.network.tracer) == 0
    assert not machine.network.tracer.enabled
