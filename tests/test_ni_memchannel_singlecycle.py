"""Focused tests for the Memory Channel hybrid and single-cycle NI."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine


def stream(ni_name, payload=248, count=10, fcb=8, throttle_ns=0):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
    machine = Machine(params, DEFAULT_COSTS, ni_name, num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))
    machine.node(0).ni.throttle_ns = throttle_ns

    def sender(node):
        for i in range(count):
            yield from node.runtime.send(1, "h", payload, body=i)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= count)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    return machine, got


# --------------------------------------------------------- memory channel

def test_memchannel_send_queue_unused():
    machine, _ = stream("memchannel")
    # The coherent send queue is vestigial: the send path is AP3000's.
    assert machine.node(0).ni.counters["messages_composed"] == 0
    assert machine.node(0).ni.counters["blocks_fetched"] == 0


def test_memchannel_throttled_stream_completes():
    # Regression: a message committing during the consumer's empty
    # poll must not strand it against a missed gate pulse.
    machine, got = stream("memchannel", count=15, throttle_ns=400)
    assert len(got) == 15
    assert len(machine.node(1).ni.recv_queue) == 0


def test_memchannel_insensitive_to_fcb():
    m1, _ = stream("memchannel", count=12, fcb=1)
    m8, _ = stream("memchannel", count=12, fcb=8)
    assert m1.sim.now <= m8.sim.now * 1.25


def test_memchannel_blocked_send_polls_uncached():
    # The AP3000-style send side burns uncached status reads while
    # blocked on flow control.  MC's NI-managed receive normally
    # recycles buffers too fast to block the sender, so pinch the
    # receive queue to force back-pressure.
    from repro.ni.registry import variant

    tiny = variant("memchannel", "tinyq", recv_queue_blocks=4)
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, tiny, num_nodes=2)
    got = []

    def slow(rt, msg):
        got.append(msg)
        yield from rt.node.compute(10_000)

    machine.node(1).runtime.register_handler("h", slow)

    def sender(node):
        before = node.ni.counters["uncached_reads"]
        for _ in range(6):
            yield from node.runtime.send(1, "h", 248)
        return node.ni.counters["uncached_reads"] - before

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 6)

    done = machine.sim.process(sender(machine.node(0)))
    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert done.value > 0


# --------------------------------------------------------- single cycle

def test_single_cycle_fastest_small_message_latency():
    from repro.workloads.micro import PingPong

    def rt(ni_name):
        machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name,
                          num_nodes=2)
        workload = PingPong(payload_bytes=8, rounds=30)
        return workload.run(machine=machine).extras["round_trip_us"]

    single = rt("cm5-1cyc")
    for other in ("cm5", "ap3000", "cni32qm"):
        assert single < rt(other)


def test_single_cycle_still_bounces_under_pressure():
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, "cm5-1cyc", num_nodes=2)
    got = []

    def slow(rt, msg):
        got.append(msg)
        yield from rt.node.compute(5_000)

    machine.node(1).runtime.register_handler("h", slow)

    def sender(node):
        for _ in range(8):
            yield from node.runtime.send(1, "h", 8)
        # Keep servicing: bounced messages need the sender's processor
        # to retry them (fifo-NI buffering semantics).
        yield from node.runtime.wait_for(lambda: len(got) >= 8)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 8)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    # Register mapping does not buy buffering: messages still bounce.
    assert machine.node(1).ni.fcu.bounce_count > 0
    assert len(got) == 8


def test_single_cycle_retries_are_cheap_but_real():
    machine, got = stream("cm5-1cyc", payload=8, count=10, fcb=1)
    tx = machine.node(0).ni
    assert len(got) == 10
    # Retries happen through the processor (fifo semantics) ...
    assert tx.counters["processor_retries"] == tx.fcu.counters["bounced_back"]
