"""Unit tests for Resource, Store and TokenPool."""

import pytest

from repro.sim import Resource, Simulator, Store, TokenPool
from repro.sim.events import SimulationError


# ---------------------------------------------------------------- Resource

def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.queue_length == 1


def test_resource_fifo_handoff():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("acq", tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(user("a", 10))
    sim.process(user("b", 10))
    sim.process(user("c", 10))
    sim.run()
    assert order == [("acq", "a", 0), ("acq", "b", 10), ("acq", "c", 20)]


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        with (yield res.request()):
            yield sim.timeout(5)
        return res.count

    p = sim.process(user())
    sim.run()
    assert p.value == 0


def test_release_unheld_request_raises():
    sim = Simulator()
    res = Resource(sim)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_cancel_waiting_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    waiting = res.request()
    waiting.cancel()
    res.release(held)
    assert not waiting.triggered
    assert res.count == 0


# ---------------------------------------------------------------- Store

def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    out = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            out.append(item)

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield sim.timeout(1)

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert out == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(42)
        yield store.put("late item")

    p = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert p.value == (42, "late item")


def test_bounded_store_blocks_put_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    times = []

    def producer():
        yield store.put(1)
        times.append(sim.now)
        yield store.put(2)
        times.append(sim.now)

    def consumer():
        yield sim.timeout(30)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [0, 30]


def test_store_try_put_try_get():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert not store.try_put("c")
    assert store.try_get() == "a"
    assert store.try_get() == "b"
    assert store.try_get() is None


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.try_put(1)
    store.try_put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


# ---------------------------------------------------------------- TokenPool

def test_token_pool_counts():
    sim = Simulator()
    pool = TokenPool(sim, 3)
    assert pool.available == 3 and pool.in_use == 0
    assert pool.try_acquire()
    assert pool.available == 2 and pool.in_use == 1
    pool.release()
    assert pool.available == 3


def test_token_pool_blocks_when_empty():
    sim = Simulator()
    pool = TokenPool(sim, 1)
    grants = []

    def user(tag):
        yield pool.acquire()
        grants.append((tag, sim.now))
        yield sim.timeout(10)
        pool.release()

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert grants == [("a", 0), ("b", 10)]


def test_infinite_pool_never_blocks():
    sim = Simulator()
    pool = TokenPool(sim, None)
    for _ in range(1000):
        assert pool.try_acquire()
    assert pool.available is None
    pool.release()  # no-op, no error


def test_over_release_raises():
    sim = Simulator()
    pool = TokenPool(sim, 2)
    with pytest.raises(SimulationError):
        pool.release()


def test_pool_size_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenPool(sim, 0)
