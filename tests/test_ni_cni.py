"""Behavioural tests for the coherent NIs (StarT-JR, CNI_512Q,
CNI_32Qm, Memory Channel)."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.memory.bus import BusOp


def run_one_way(ni_name, payload, count=1, params=None):
    machine = Machine(params or DEFAULT_PARAMS, DEFAULT_COSTS, ni_name,
                      num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        for _ in range(count):
            yield from node.runtime.send(1, "h", payload)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= count)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    return machine, got


# ------------------------------------------------------- send engines

def test_cni_send_is_ni_managed():
    machine, _ = run_one_way("startjr", 248)
    tx = machine.node(0).ni
    # The processor composed 4 blocks; the NI engine fetched them.
    assert tx.counters["messages_composed"] == 1
    assert tx.counters["blocks_fetched"] == 4
    # No uncached pushes at all.
    assert tx.counters["uncached_writes"] == 0


def test_prefetching_cnis_prefetch_blocks():
    machine, _ = run_one_way("cni512q", 248)
    assert machine.node(0).ni.counters["blocks_prefetched"] == 4
    machine, _ = run_one_way("startjr", 248)
    assert machine.node(0).ni.counters["blocks_prefetched"] == 0


def test_processor_cache_supplies_composed_blocks():
    machine, _ = run_one_way("cni32qm", 248)
    # The NI's fetches were cache-to-cache from the processor cache.
    assert machine.node(0).bus.counters["flow:cache->ni"] >= 4


def test_cni_send_never_blocks_processor_on_flow_control():
    # Even at fcb=1 with a slow consumer, the *processor* keeps going;
    # only the NI engine waits for buffers.
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, "cni32qm", num_nodes=2)
    got = []

    def slow(rt, msg):
        got.append(msg)
        yield from rt.node.compute(5_000)

    machine.node(1).runtime.register_handler("h", slow)

    def sender(node):
        for _ in range(6):
            yield from node.runtime.send(1, "h", 56)
        node.finish()

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 6)

    done = machine.sim.process(sender(machine.node(0)))
    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    assert machine.node(0).timer.total("buffering") == 0


# ------------------------------------------------------- receive paths

def test_startjr_deposits_to_main_memory():
    machine, _ = run_one_way("startjr", 248)
    rx_bus = machine.node(1).bus
    # Deposit: invalidate + posted writeback per block.
    assert rx_bus.transactions(BusOp.WRITEBACK) >= 4
    # Consumption: processor misses to main memory.
    assert rx_bus.counters["flow:memory->cache"] >= 4


def test_cni512q_supplies_from_ni_memory():
    machine, _ = run_one_way("cni512q", 248)
    rx_bus = machine.node(1).bus
    # No data writebacks over the bus (NI-homed queues) ...
    assert rx_bus.transactions(BusOp.WRITEBACK) == 0
    # ... and the processor's reads are supplied by the NI.
    assert rx_bus.counters["flow:ni->cache"] >= 4


def test_cni32qm_supplies_from_ni_cache():
    machine, _ = run_one_way("cni32qm", 248)
    rx_bus = machine.node(1).bus
    assert rx_bus.counters["flow:ni_cache->cache"] >= 4
    assert machine.node(1).ni.counters["deposits_cached"] == 1


def test_memchannel_is_ap3000_send_startjr_receive():
    machine, _ = run_one_way("memchannel", 248)
    tx = machine.node(0).ni
    rx = machine.node(1).ni
    assert tx.counters["chunks_pushed"] == 4          # AP3000-style send
    assert tx.counters["block_writes"] == 4
    assert rx.counters["messages_deposited"] == 1     # CNI-style receive
    assert machine.node(1).bus.counters["flow:memory->cache"] >= 4


def test_coherent_receive_frees_buffers_without_processor():
    # The NI engine releases incoming flow-control buffers by itself.
    params = DEFAULT_PARAMS.replace(flow_control_buffers=2)
    machine = Machine(params, DEFAULT_COSTS, "startjr", num_nodes=2)
    arrived = []
    machine.node(1).runtime.register_handler("h", lambda r, m: arrived.append(m))

    def sender(node):
        for _ in range(6):
            yield from node.runtime.send(1, "h", 56)
        yield from node.compute(50_000)
        # The receiver has not consumed anything yet, but the NI has
        # drained all 6 messages into the memory queue and released
        # every flow-control buffer.
        return (
            machine.node(1).ni.fcu.recv_buffers.in_use,
            len(machine.node(1).ni.recv_queue),
        )

    done = machine.sim.process(sender(machine.node(0)))

    def receiver(node):
        # Busy with compute (not servicing) while the sender streams.
        yield from node.compute(60_000)
        yield from node.runtime.drain()

    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    in_use, queued = done.value
    assert in_use == 0   # all flow-control buffers released by NI
    assert queued == 6


# ------------------------------------------------------- CNI_32Qm cache

def test_cni32qm_bypasses_when_cache_full_of_live_messages():
    # Send more than 32 blocks' worth without consuming: later
    # deposits must bypass to memory.
    params = DEFAULT_PARAMS.replace(flow_control_buffers=None)
    machine = Machine(params, DEFAULT_COSTS, "cni32qm", num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        for _ in range(12):                 # 12 x 4 blocks = 48 > 32
            yield from node.runtime.send(1, "h", 248)
        yield from node.compute(100_000)    # let deposits finish

    done = machine.sim.process(sender(machine.node(0)))

    def receiver(node):
        # Not consuming while the burst lands: the cache must fill.
        yield from node.compute(150_000)
        yield from node.runtime.drain()

    machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    ni = machine.node(1).ni
    assert ni.counters["deposits_cached"] >= 1
    assert ni.counters["deposits_bypassed"] >= 1


def test_cni32qm_dead_blocks_dropped_without_writeback():
    # A paced sender lets the receiver consume each message before the
    # next lands: everything stays cached, dead blocks are reused
    # (dropped silently), and nothing is ever written back.
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler("h", lambda r, m: got.append(m))

    def sender(node):
        for _ in range(20):
            yield from node.runtime.send(1, "h", 248)
            yield from node.compute(5_000)   # pace the stream

    def receiver(node):
        yield from node.runtime.wait_for(lambda: len(got) >= 20)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)
    rcache = machine.node(1).ni.recv_cache
    assert rcache.counters["victims_written_back"] == 0
    assert machine.node(1).ni.counters["deposits_bypassed"] == 0


def test_cni32qm_ablation_writes_back_dead_blocks():
    from repro.ni.cni32qm import CNI32Qm

    class NoDropCNI(CNI32Qm):
        ni_name = "cni32qm"
        drop_dead_blocks = False

    # Patch the registry temporarily.
    from repro.ni import registry
    old = registry._REGISTRY["cni32qm"]
    registry._REGISTRY["cni32qm"] = NoDropCNI
    try:
        machine, _ = run_one_way("cni32qm", 248, count=20)
    finally:
        registry._REGISTRY["cni32qm"] = old
    rcache = machine.node(1).ni.recv_cache
    assert rcache.counters["victims_written_back"] > 0


def test_cni32qm_live_accounting_returns_to_zero():
    machine, _ = run_one_way("cni32qm", 248, count=8)

    def drainer(node):
        yield from node.runtime.drain()

    done = machine.sim.process(drainer(machine.node(1)))
    machine.sim.run(until=done)
    ni = machine.node(1).ni
    assert ni._live_cached_blocks == 0
    assert ni._live_addrs == set()


# ------------------------------------------------------- queue stalls

def test_send_queue_overflow_stalls_processor_as_buffering():
    # Shrink the send queue so the processor outruns the NI engine.
    from repro.ni.cni0qm import StartJrNI
    from repro.ni import registry

    class TinyQueueNI(StartJrNI):
        ni_name = "startjr"
        send_queue_blocks = 4

    old = registry._REGISTRY["startjr"]
    registry._REGISTRY["startjr"] = TinyQueueNI
    try:
        params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
        machine = Machine(params, DEFAULT_COSTS, "startjr", num_nodes=2)
        got = []

        def slow(rt, msg):
            got.append(msg)
            yield from rt.node.compute(10_000)

        machine.node(1).runtime.register_handler("h", slow)

        def sender(node):
            for _ in range(10):
                yield from node.runtime.send(1, "h", 248)
            node.finish()

        def receiver(node):
            yield from node.runtime.wait_for(lambda: len(got) >= 10)

        done = machine.sim.process(sender(machine.node(0)))
        machine.sim.process(receiver(machine.node(1)))
        machine.sim.run(until=done)
        assert machine.node(0).timer.total("buffering") > 0
        assert machine.node(0).ni.counters["send_queue_stalls"] > 0
    finally:
        registry._REGISTRY["startjr"] = old
