"""Unit tests for the macrobenchmark workload models."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.workloads import MACRO_NAMES
from repro.workloads.base import WorkloadResult, run_macrobenchmark
from repro.workloads.registry import create, get

QUICK = {
    "appbt": {"iterations": 1},
    "barnes": {"iterations": 1},
    "dsmc": {"iterations": 1},
    "em3d": {"iterations": 1},
    "moldyn": {"iterations": 1},
    "spsolve": {"levels": 4, "width": 48},
    "unstructured": {"iterations": 1},
}


def quick_run(name, ni_name="cni32qm", params=None, **extra):
    kwargs = dict(QUICK[name])
    kwargs.update(extra)
    workload = create(name, **kwargs)
    return workload.run(
        params=params or DEFAULT_PARAMS, costs=DEFAULT_COSTS,
        ni_name=ni_name,
    )


# ------------------------------------------------------------- generic

@pytest.mark.parametrize("name", MACRO_NAMES)
def test_every_macro_completes(name):
    result = quick_run(name)
    assert isinstance(result, WorkloadResult)
    assert result.elapsed_ns > 0
    assert result.messages_sent > 0


@pytest.mark.parametrize("name", MACRO_NAMES)
def test_every_macro_deterministic(name):
    a = quick_run(name)
    b = quick_run(name)
    assert a.elapsed_ns == b.elapsed_ns
    assert a.messages_sent == b.messages_sent


@pytest.mark.parametrize("name", ["em3d", "dsmc"])
def test_macros_run_on_fifo_nis(name):
    result = quick_run(name, ni_name="cm5")
    assert result.elapsed_ns > 0


def test_registry_rejects_unknown():
    with pytest.raises(ValueError):
        create("nonexistent")


def test_registry_names_match_classes():
    for name in MACRO_NAMES:
        assert get(name).name == name


def test_run_macrobenchmark_helper():
    result = run_macrobenchmark("em3d", "cni32qm", iterations=1)
    assert result.workload == "em3d"
    assert result.ni_name == "cni32qm"


# ------------------------------------------------------------- mixes

def test_appbt_message_mix_peaks():
    result = quick_run("appbt", iterations=2)
    buckets = result.message_sizes.buckets()
    assert 12 in buckets      # requests / invalidations / barrier
    assert 32 in buckets      # 24B-block data replies
    assert buckets[12] > buckets[32]


def test_barnes_has_140_byte_replies():
    result = quick_run("barnes", iterations=2)
    buckets = result.message_sizes.buckets()
    assert 140 in buckets
    assert result.message_sizes.fraction_of(12) > 0.3


def test_dsmc_three_peaks():
    result = quick_run("dsmc", iterations=2)
    buckets = result.message_sizes.buckets()
    for size in (12, 44, 140):
        assert size in buckets, f"missing {size}B peak"


def test_em3d_dominated_by_20_byte_updates():
    result = quick_run("em3d", iterations=2)
    assert result.message_sizes.fraction_of(20) > 0.8


def test_moldyn_bulk_rows_logged_logically():
    result = quick_run("moldyn")
    buckets = result.message_sizes.buckets()
    assert 3080 in buckets     # 3072B payload + 8B header, logged once
    assert 140 in buckets


def test_spsolve_mostly_20_byte_edges():
    result = quick_run("spsolve")
    assert result.message_sizes.fraction_of(20) > 0.5


def test_unstructured_has_bulk_and_control():
    result = quick_run("unstructured", iterations=2)
    buckets = result.message_sizes.buckets()
    assert 8 in buckets                        # 0-payload go-aheads
    assert any(size > 200 for size in buckets)  # batched updates


# ------------------------------------------------------------- behaviour

def test_em3d_sensitive_to_flow_control_on_fifo_ni():
    fast = quick_run("em3d", ni_name="cm5",
                     params=DEFAULT_PARAMS.replace(flow_control_buffers=None))
    slow = quick_run("em3d", ni_name="cm5",
                     params=DEFAULT_PARAMS.replace(flow_control_buffers=1))
    assert slow.elapsed_ns > fast.elapsed_ns
    assert slow.bounces > 0


def test_coherent_ni_insensitive_to_flow_control():
    fcb1 = quick_run("em3d", ni_name="cni32qm",
                     params=DEFAULT_PARAMS.replace(flow_control_buffers=1))
    fcb8 = quick_run("em3d", ni_name="cni32qm",
                     params=DEFAULT_PARAMS.replace(flow_control_buffers=8))
    # Within a few percent (the paper: "largely insensitive").
    assert fcb1.elapsed_ns <= fcb8.elapsed_ns * 1.15


def test_breakdown_fractions_sum_to_one():
    result = quick_run("dsmc")
    total = sum(result.breakdown().values())
    assert total == pytest.approx(1.0)


def test_spsolve_all_vertices_fire():
    workload = create("spsolve", levels=4, width=48)
    workload.run(params=DEFAULT_PARAMS, costs=DEFAULT_COSTS,
                 ni_name="cni32qm")
    assert workload._fired == workload._expected_fires()


def test_summary_is_readable():
    result = quick_run("em3d")
    text = result.summary()
    assert "em3d" in text and "cni32qm" in text
