"""Unit tests for generator-driven processes and interrupts."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.events import SimulationError


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return {"answer": 41 + 1}

    p = sim.process(proc())
    sim.run()
    assert p.value == {"answer": 42}


def test_process_is_alive_until_done():
    sim = Simulator()

    def proc():
        yield sim.timeout(10)

    p = sim.process(proc())
    assert p.is_alive
    sim.run()
    assert not p.is_alive


def test_waiting_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(4)
        return "child-done"

    def parent():
        value = yield sim.process(child())
        return f"saw {value}"

    p = sim.process(parent())
    sim.run()
    assert p.value == "saw child-done"


def test_exception_in_process_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise KeyError("inner")

    def parent():
        try:
            yield sim.process(child())
        except KeyError:
            return "handled"

    p = sim.process(parent())
    sim.run()
    assert p.value == "handled"


def test_unhandled_process_exception_crashes_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        raise ValueError("unhandled")

    sim.process(proc())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(victim):
        yield sim.timeout(50)
        victim.interrupt("wake up")

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert log == [(50, "wake up")]


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt:
            pass
        yield sim.timeout(10)
        return sim.now

    def interrupter(victim):
        yield sim.timeout(5)
        victim.interrupt()

    victim = sim.process(sleeper())
    sim.process(interrupter(victim))
    sim.run()
    assert victim.value == 15


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_immediate_chain_of_processed_events():
    # Yielding an already-processed event must resume without deadlock.
    sim = Simulator()

    def proc():
        evt = sim.event()
        evt.succeed("early")
        sim.run_marker = True
        yield sim.timeout(0)
        value = yield evt  # processed by now
        return value

    p = sim.process(proc())
    sim.run()
    assert p.value == "early"


def test_many_processes_make_progress():
    sim = Simulator()
    done = []

    def worker(i):
        yield sim.timeout(i % 7)
        done.append(i)

    for i in range(200):
        sim.process(worker(i))
    sim.run()
    assert sorted(done) == list(range(200))
