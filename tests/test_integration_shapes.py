"""Integration tests asserting the paper's headline shapes at
unit-test scale (fast versions of the benchmark assertions)."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.workloads.micro import PingPong, StreamBandwidth


def rt_us(ni_name, payload, rounds=30, always_udma=False):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=2)
    if always_udma:
        for node in machine:
            node.ni.always_udma = True
    workload = PingPong(payload_bytes=payload, rounds=rounds)
    return workload.run(machine=machine).extras["round_trip_us"]


def bw_mb(ni_name, payload, transfers=60, throttle_ns=0):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=2)
    workload = StreamBandwidth(payload_bytes=payload, transfers=transfers,
                               throttle_ns=throttle_ns)
    return workload.run(machine=machine).extras["bandwidth_mb_s"]


# ----------------------------------------------------- Table 5 latency

def test_cni32qm_has_best_latency_everywhere():
    for payload in (8, 64, 248):
        winner = rt_us("cni32qm", payload)
        for other in ("cm5", "ap3000", "startjr", "cni512q", "memchannel"):
            assert winner < rt_us(other, payload), (payload, other)


def test_cm5_degrades_fastest_with_size():
    small = {ni: rt_us(ni, 8) for ni in ("cm5", "ap3000", "cni32qm")}
    large = {ni: rt_us(ni, 248) for ni in ("cm5", "ap3000", "cni32qm")}
    growth = {ni: large[ni] / small[ni] for ni in small}
    assert growth["cm5"] == max(growth.values())


def test_udma_breakeven_exists():
    # Pure UDMA loses small, wins large (Section 6.1.1).
    assert rt_us("udma", 8, always_udma=True) > rt_us("cm5", 8)
    assert rt_us("udma", 248, always_udma=True) < rt_us("cm5", 248)


def test_ap3000_startjr_crossover():
    assert rt_us("startjr", 8) < rt_us("ap3000", 8)
    assert rt_us("ap3000", 248) < rt_us("startjr", 248)


def test_cni512q_beats_startjr():
    for payload in (8, 248):
        assert rt_us("cni512q", payload) < rt_us("startjr", payload)


def test_register_mapped_ni_wins_raw_latency():
    # Latency is the register NI's strength; buffering is its weakness
    # (Figure 4, covered by the figure benchmark).
    assert rt_us("cm5-1cyc", 8) < rt_us("cni32qm", 8)


# ----------------------------------------------------- Table 5 bandwidth

def test_ap3000_out_bandwidths_cm5():
    assert bw_mb("ap3000", 248) > 2 * bw_mb("cm5", 248)


def test_throttling_helps_cni32qm_bandwidth():
    plain = bw_mb("cni32qm", 248)
    throttled = max(
        bw_mb("cni32qm", 248, throttle_ns=t) for t in (400, 600, 900)
    )
    assert throttled > plain


def test_unthrottled_cni32qm_below_ap3000():
    # Receive-cache overflow under streaming (Section 6.1.2).
    assert bw_mb("cni32qm", 248) < bw_mb("ap3000", 248)


# ----------------------------------------------------- buffering

def test_fifo_ni_sensitive_coherent_ni_insensitive():
    def stream_time(ni_name, fcb):
        params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
        machine = Machine(params, DEFAULT_COSTS, ni_name, num_nodes=2)
        workload = StreamBandwidth(payload_bytes=56, transfers=60)
        workload.run(machine=machine)
        return machine.sim.now

    cm5_penalty = stream_time("cm5", 1) / stream_time("cm5", None)
    cni_penalty = stream_time("cni32qm", 1) / stream_time("cni32qm", None)
    assert cm5_penalty > cni_penalty
    assert cni_penalty < 1.1


def test_processor_retries_cost_fifo_processors():
    # Under overflow, fifo NIs burn processor time on buffering work.
    params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
    machine = Machine(params, DEFAULT_COSTS, "cm5", num_nodes=2)
    workload = StreamBandwidth(payload_bytes=56, transfers=40)
    workload.run(machine=machine)
    tx = machine.node(0)
    assert tx.ni.counters["processor_retries"] > 0
    assert tx.timer.total("buffering") > 0
