"""Tests for experiment-harness internals."""

import pytest

from repro.experiments.common import (
    NI_LABELS,
    default_params,
    fcb_label,
    label,
    workload_kwargs,
)
from repro.ni.registry import ALL_NI_NAMES


def test_fcb_label():
    assert fcb_label(None) == "inf"
    assert fcb_label(8) == "8"


def test_labels_cover_all_nis():
    for name in ALL_NI_NAMES + ("cm5-1cyc",):
        assert name in NI_LABELS
    assert label("cm5") == "CM-5-like NI"
    assert label("unknown-ni") == "unknown-ni"   # graceful fallback


def test_default_params_flow_control():
    assert default_params().flow_control_buffers == 8
    assert default_params(flow_control_buffers=None).flow_control_buffers is None
    assert default_params(flow_control_buffers=2).flow_control_buffers == 2


def test_workload_kwargs_quick_vs_full():
    assert workload_kwargs("em3d", quick=False) == {}
    quick = workload_kwargs("em3d", quick=True)
    assert quick.get("iterations") is not None
    # The returned dict is a copy: mutating it must not leak.
    quick["iterations"] = 999
    assert workload_kwargs("em3d", quick=True)["iterations"] != 999


def test_table4_dominant_sizes():
    from repro.experiments.table4 import dominant_sizes
    from repro.sim import Histogram

    h = Histogram()
    h.add(12, count=70)
    h.add(140, count=25)
    h.add(99, count=5)
    peaks = dominant_sizes(h, top=2)
    assert peaks == [(12, 0.70), (140, 0.25)]


def test_table5_machine_builder_forces_udma():
    from repro.experiments.table5 import _machine

    machine = _machine("udma")
    assert machine.node(0).ni.always_udma
    machine = _machine("cm5", throttle_ns=500)
    assert machine.node(0).ni.throttle_ns == 500


def test_figure1_groups_cover_all_timer_states():
    from repro.workloads.base import FIGURE1_GROUPS

    covered = {s for states in FIGURE1_GROUPS.values() for s in states}
    assert covered == {"compute", "wait", "send", "receive", "buffering"}


def test_workload_result_summary_and_breakdown_roundtrip():
    from repro.sim import Histogram
    from repro.workloads.base import WorkloadResult

    result = WorkloadResult(
        workload="w", ni_name="cm5", elapsed_ns=1000,
        states={"compute": 500, "send": 300, "buffering": 200},
        messages_sent=5, message_sizes=Histogram(), bounces=2,
        flow_control_buffers=8,
    )
    b = result.breakdown()
    assert b["compute"] == 0.5
    assert b["data_transfer"] == 0.3
    assert b["buffering"] == 0.2
    assert "cm5" in result.summary()
    assert result.elapsed_us == 1.0
