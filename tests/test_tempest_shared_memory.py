"""Unit tests for the software DSM protocol."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.tempest import SharedMemory


def make(nodes=3, payload=24):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm",
                      num_nodes=nodes)
    sm = SharedMemory(machine, block_payload_bytes=payload, name="t")
    return machine, sm


def run_programs(machine, *programs):
    procs = [machine.sim.process(p) for p in programs]
    machine.sim.run(until=machine.sim.all_of(procs))
    return procs


def spin(machine, node, flag):
    """Keep servicing until flag[0] set (home nodes must serve)."""
    yield from node.runtime.wait_for(lambda: flag[0])


def test_remote_read_fetches_and_caches():
    machine, sm = make()
    done = [False]

    def reader(node):
        yield from sm.read(node, home=1, block=0)
        assert sm.is_valid(0, (1, 0))
        yield from sm.read(node, home=1, block=0)   # now a hit
        done[0] = True

    run_programs(machine, reader(machine.node(0)),
                 spin(machine, machine.node(1), done),
                 spin(machine, machine.node(2), done))
    assert sm.counters["read_misses"] == 1
    assert sm.counters["read_hits"] == 1


def test_local_read_is_free():
    machine, sm = make()
    done = [False]

    def reader(node):
        yield from sm.read(node, home=0, block=5)
        done[0] = True

    run_programs(machine, reader(machine.node(0)),
                 spin(machine, machine.node(1), done),
                 spin(machine, machine.node(2), done))
    assert sm.counters["read_misses"] == 0


def test_write_invalidates_remote_readers():
    machine, sm = make()
    phase = [0]

    def reader(node):
        yield from sm.read(node, home=2, block=0)
        phase[0] = 1
        yield from node.runtime.wait_for(lambda: phase[0] == 2)
        # The writer's exclusivity revoked our copy.
        assert not sm.is_valid(node.node_id, (2, 0))

    def writer(node):
        yield from node.runtime.wait_for(lambda: phase[0] == 1)
        yield from sm.write(node, home=2, block=0)
        assert sm.is_dirty(node.node_id, (2, 0))
        phase[0] = 2

    def home(node):
        yield from node.runtime.wait_for(lambda: phase[0] == 2)

    run_programs(machine, reader(machine.node(0)),
                 writer(machine.node(1)), home(machine.node(2)))
    assert sm.counters["invalidations"] >= 1


def test_read_of_dirty_block_forwards_to_owner():
    machine, sm = make()
    phase = [0]

    def writer(node):
        yield from sm.write(node, home=2, block=3)
        phase[0] = 1
        yield from node.runtime.wait_for(lambda: phase[0] == 2)

    def reader(node):
        yield from node.runtime.wait_for(lambda: phase[0] == 1)
        yield from sm.read(node, home=2, block=3)
        assert sm.is_valid(node.node_id, (2, 3))
        phase[0] = 2

    def home(node):
        yield from node.runtime.wait_for(lambda: phase[0] == 2)

    run_programs(machine, writer(machine.node(0)),
                 reader(machine.node(1)), home(machine.node(2)))
    assert sm.counters["forwards"] == 1


def test_concurrent_writers_serialize_without_hanging():
    machine, sm = make(nodes=4)
    finished = [0]

    def writer(node):
        for _ in range(3):
            yield from sm.write(node, home=3, block=0)
            yield from sm.read(node, home=3, block=1)
        finished[0] += 1
        # Keep servicing until everyone is done: a writer that exits
        # while owning the block would never ack later invalidations.
        yield from node.runtime.wait_for(lambda: finished[0] >= 3)

    def home(node):
        yield from node.runtime.wait_for(lambda: finished[0] >= 3)

    run_programs(machine,
                 writer(machine.node(0)), writer(machine.node(1)),
                 writer(machine.node(2)), home(machine.node(3)))
    assert finished[0] == 3


def test_data_reply_sizes_match_block_payload():
    machine, sm = make(payload=132)
    done = [False]

    def reader(node):
        yield from sm.read(node, home=1, block=0)
        done[0] = True

    run_programs(machine, reader(machine.node(0)),
                 spin(machine, machine.node(1), done),
                 spin(machine, machine.node(2), done))
    sizes = machine.node(1).runtime.sent_sizes.buckets()
    assert 140 in sizes   # 132 B + 8 B header — the barnes peak
