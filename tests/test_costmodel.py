"""Validate the closed-form cost model against the simulator.

If the analytical predictions and the LogP measurements diverge, one
of them has a stray or missing cost — this is the cross-check that the
simulator implements exactly the model DESIGN.md describes.
"""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.analysis import CostModel, predict
from repro.workloads.logp import LogPProbe

MODELED_NIS = ("cm5", "ap3000", "startjr", "cni512q", "cni32qm")


def measured(ni_name, payload):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=2)
    workload = LogPProbe(payload_bytes=payload, samples=10, stream=30)
    return workload.run(machine=machine).extras["logp"]


@pytest.mark.parametrize("ni_name", MODELED_NIS)
@pytest.mark.parametrize("payload", [8, 120, 248])
def test_predicted_send_occupancy_matches_measured(ni_name, payload):
    prediction = predict(ni_name, payload)
    sample = measured(ni_name, payload)
    assert sample.o_send_ns == pytest.approx(
        prediction.o_send_ns, rel=0.10
    ), (ni_name, payload, prediction.o_send_ns, sample.o_send_ns)


@pytest.mark.parametrize("ni_name", MODELED_NIS)
def test_predicted_receive_occupancy_matches_measured(ni_name):
    prediction = predict(ni_name, 120)
    sample = measured(ni_name, 120)
    assert sample.o_recv_ns == pytest.approx(
        prediction.o_recv_ns, rel=0.15
    ), (ni_name, prediction.o_recv_ns, sample.o_recv_ns)


def test_one_way_floor_is_a_lower_bound():
    for ni_name in MODELED_NIS:
        prediction = predict(ni_name, 56)
        sample = measured(ni_name, 56)
        assert sample.delivery_ns >= prediction.one_way_floor_ns * 0.95, (
            ni_name, prediction.one_way_floor_ns, sample.delivery_ns
        )


def test_model_orderings_match_paper():
    # The closed forms alone already reproduce the qualitative story.
    o = {n: predict(n, 248).o_send_ns for n in MODELED_NIS}
    assert o["cm5"] > o["ap3000"] > o["cni32qm"]
    recv = {n: predict(n, 248).o_recv_ns for n in MODELED_NIS}
    assert recv["cni32qm"] < recv["startjr"]       # NI-cache supply
    assert recv["cm5"] == max(recv.values())       # word-at-a-time pops


def test_unknown_ni_rejected():
    with pytest.raises(ValueError):
        predict("nonexistent", 8)


def test_cost_model_scales_with_params():
    fast_mem = DEFAULT_PARAMS.replace(mem_access_ns=60)
    model = CostModel(fast_mem, DEFAULT_COSTS)
    slow = predict("startjr", 248)
    fast = model.predict("startjr", 248)
    assert fast.o_recv_ns < slow.o_recv_ns   # memory latency shows up
