"""Property-based tests for flow control, queues and fragmentation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.network import FlowControlUnit, Message, Network, fragment_payload
from repro.ni.queue import CoherentQueue
from repro.sim import Simulator


# ------------------------------------------------------- fragmentation

@given(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=16, max_value=1024),
    st.integers(min_value=4, max_value=15),
)
def test_fragmentation_conserves_bytes(total, max_msg, header):
    frags = fragment_payload(total, max_message_bytes=max_msg,
                             header_bytes=header)
    assert sum(frags) == max(total, 0) or (total == 0 and frags == [0])
    assert all(0 <= f <= max_msg - header for f in frags)
    # Greedy fragmentation: every fragment except the last is full.
    assert all(f == max_msg - header for f in frags[:-1])


# ------------------------------------------------------- flow control

@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.integers(min_value=16, max_value=256), min_size=1,
             max_size=25),
    st.integers(min_value=0, max_value=2000),
)
@settings(max_examples=50, deadline=None)
def test_no_message_lost_or_duplicated(fcb, sizes, consumer_delay):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
    sim = Simulator()
    net = Network(sim, params)
    tx = FlowControlUnit(sim, net, 0, params, DEFAULT_COSTS)
    rx = FlowControlUnit(sim, net, 1, params, DEFAULT_COSTS)
    sent = [Message(src=0, dst=1, size=s, body=i)
            for i, s in enumerate(sizes)]
    received = []

    def sender():
        for msg in sent:
            yield from tx.send(msg)

    def consumer():
        while len(received) < len(sent):
            msg = yield rx.inbound.get()
            if consumer_delay:
                yield sim.timeout(consumer_delay)
            received.append(msg.body)
            rx.release_receive_buffer()

    sim.process(sender())
    done = sim.process(consumer())
    sim.run(until=done)
    assert sorted(received) == list(range(len(sent)))   # exactly once
    # All buffers returned at quiescence.
    sim.run()
    assert tx.send_buffers_in_use == 0
    assert rx.recv_buffers.in_use == 0


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_bounced_messages_eventually_accepted(fcb, count):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
    sim = Simulator()
    net = Network(sim, params)
    tx = FlowControlUnit(sim, net, 0, params, DEFAULT_COSTS)
    rx = FlowControlUnit(sim, net, 1, params, DEFAULT_COSTS)
    got = []

    def sender():
        for i in range(count):
            yield from tx.send(Message(src=0, dst=1, size=64, body=i))

    def consumer():
        while len(got) < count:
            msg = yield rx.inbound.get()
            yield sim.timeout(1500)          # slow: force bounces
            got.append(msg.body)
            rx.release_receive_buffer()

    sim.process(sender())
    done = sim.process(consumer())
    sim.run(until=done)
    assert sorted(got) == list(range(count))


# ------------------------------------------------------- coherent queue

queue_op = st.sampled_from(["enqueue", "dequeue"])


@given(
    st.integers(min_value=2, max_value=16),
    st.lists(st.tuples(queue_op, st.integers(min_value=1, max_value=4)),
             min_size=1, max_size=60),
)
def test_queue_occupancy_and_fifo(num_blocks, ops):
    sim = Simulator()
    q = CoherentQueue(sim, 0x9000_0000, num_blocks, 64, "q")
    next_id = 0
    expected_order = []
    for op, nblocks in ops:
        if op == "enqueue":
            if nblocks <= num_blocks and q.can_reserve(nblocks):
                addrs = q.reserve(nblocks)
                assert len(addrs) == nblocks
                msg = Message(src=0, dst=1, size=nblocks * 64,
                              body=next_id)
                q.commit(msg, addrs)
                expected_order.append(next_id)
                next_id += 1
        else:
            if len(q):
                msg, addrs = q.pop()
                assert msg.body == expected_order.pop(0)   # FIFO
        assert 0 <= q.free_blocks <= num_blocks
        assert q.used_blocks + q.free_blocks == num_blocks
    # Drain and verify full conservation.
    while len(q):
        msg, _ = q.pop()
        assert msg.body == expected_order.pop(0)
    assert q.free_blocks == num_blocks
