"""Unit tests for messages and fragmentation."""

import pytest

from repro.network import Message, MessageKind, fragment_payload
from repro.network.message import message_size


def test_message_fields_and_uid_monotonic():
    a = Message(src=0, dst=1, size=16)
    b = Message(src=0, dst=1, size=16)
    assert b.uid > a.uid
    assert a.kind is MessageKind.ACTIVE_MESSAGE
    assert a.payload_bytes == 8


def test_message_validation():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, size=0)
    with pytest.raises(ValueError):
        Message(src=2, dst=2, size=16)


def test_payload_bytes_never_negative():
    ack = Message(src=0, dst=1, size=8, kind=MessageKind.ACK)
    assert ack.payload_bytes == 0


def test_message_size_helper():
    assert message_size(0) == 8
    assert message_size(248) == 256
    with pytest.raises(ValueError):
        message_size(-1)


def test_fragment_small_payload_is_single():
    assert fragment_payload(100) == [100]
    assert fragment_payload(248) == [248]


def test_fragment_zero_payload():
    assert fragment_payload(0) == [0]


def test_fragment_large_payload():
    frags = fragment_payload(1536)          # moldyn's 1.5 KB rows
    assert sum(frags) == 1536
    assert len(frags) == 7                  # ceil(1536 / 248)
    assert all(f <= 248 for f in frags)
    assert frags[:-1] == [248] * 6          # all but the tail are full


def test_fragment_respects_custom_limits():
    frags = fragment_payload(100, max_message_bytes=64, header_bytes=8)
    assert sum(frags) == 100
    assert all(f <= 56 for f in frags)
    assert len(frags) == 2


def test_fragment_validation():
    with pytest.raises(ValueError):
        fragment_payload(-1)
    with pytest.raises(ValueError):
        fragment_payload(10, max_message_bytes=8, header_bytes=8)
