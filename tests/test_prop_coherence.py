"""Property-based tests of the MOESI coherence invariants.

Random sequences of loads/stores from multiple caches must preserve,
at every step:

- **single-writer**: at most one cache holds a block M or E;
- **writer-excludes-readers**: if some cache holds M or E, no other
  cache holds the block in any valid state;
- **single-owner**: at most one cache holds a block O (the designated
  supplier);
- no operation ever deadlocks or raises.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_PARAMS
from repro.memory import Cache, CoherenceState, MainMemory, MemoryBus
from repro.sim import Simulator

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
O = CoherenceState.OWNED  # noqa: E741

#: One op: (cache index 0-2, load/store, block index 0-3).
op_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["load", "store"]),
    st.integers(min_value=0, max_value=3),
)


def check_invariants(caches, addrs):
    for addr in addrs:
        states = [cache.state_of(addr) for cache in caches]
        writers = sum(1 for s in states if s in (M, E))
        assert writers <= 1, f"multiple M/E holders at {addr:#x}: {states}"
        if writers:
            valid = sum(1 for s in states if s.is_valid)
            assert valid == 1, f"M/E alongside copies at {addr:#x}: {states}"
        owners = sum(1 for s in states if s is O)
        assert owners <= 1, f"multiple owners at {addr:#x}: {states}"


@given(st.lists(op_strategy, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_moesi_invariants_hold_under_random_traffic(ops):
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    bus.set_default_home(MainMemory(DEFAULT_PARAMS))
    caches = [
        Cache(sim, bus, DEFAULT_PARAMS, name=f"c{i}") for i in range(3)
    ]
    addrs = [block * 64 for block in range(4)]

    def driver():
        for cache_index, op, block in ops:
            cache = caches[cache_index]
            addr = addrs[block]
            if op == "load":
                yield from cache.load(addr)
            else:
                yield from cache.store(addr)
            check_invariants(caches, addrs)

    done = sim.process(driver())
    sim.run(until=done)
    check_invariants(caches, addrs)


@given(st.lists(op_strategy, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_moesi_with_conflict_evictions(ops):
    # A 2-set cache forces evictions/writebacks into the mix.
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    bus.set_default_home(MainMemory(DEFAULT_PARAMS))
    caches = [
        Cache(sim, bus, DEFAULT_PARAMS, name=f"c{i}", num_sets=2)
        for i in range(3)
    ]
    addrs = [block * 64 for block in range(4)]  # blocks alias sets 0/1

    def driver():
        for cache_index, op, block in ops:
            cache = caches[cache_index]
            if op == "load":
                yield from cache.load(addrs[block])
            else:
                yield from cache.store(addrs[block])
            check_invariants(caches, addrs)

    done = sim.process(driver())
    sim.run(until=done)


@given(st.lists(op_strategy, min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_concurrent_caches_make_progress(ops):
    # The same ops split across concurrent processes (bus contention):
    # everything completes, no deadlock, invariants hold at the end.
    sim = Simulator()
    bus = MemoryBus(sim, DEFAULT_PARAMS)
    bus.set_default_home(MainMemory(DEFAULT_PARAMS))
    caches = [
        Cache(sim, bus, DEFAULT_PARAMS, name=f"c{i}") for i in range(3)
    ]
    addrs = [block * 64 for block in range(4)]

    def driver(cache, my_ops):
        for op, block in my_ops:
            if op == "load":
                yield from cache.load(addrs[block])
            else:
                yield from cache.store(addrs[block])

    per_cache = {i: [] for i in range(3)}
    for cache_index, op, block in ops:
        per_cache[cache_index].append((op, block))
    procs = [
        sim.process(driver(caches[i], per_cache[i])) for i in range(3)
    ]
    sim.run(until=sim.all_of(procs))
    check_invariants(caches, addrs)
