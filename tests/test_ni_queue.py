"""Unit tests for the coherent message queue machinery."""

import pytest

from repro.network.message import Message
from repro.ni.queue import CoherentQueue, QueueFull
from repro.sim import Simulator


def make_queue(blocks=8, base=0x9000_0000):
    sim = Simulator()
    return sim, CoherentQueue(sim, base, blocks, 64, name="q")


def msg(size=64):
    return Message(src=0, dst=1, size=size)


def test_addresses_are_block_aligned_and_wrap():
    _, q = make_queue(blocks=4)
    assert q.addr_of(0) == 0x9000_0000
    assert q.addr_of(1) == 0x9000_0040
    assert q.addr_of(4) == 0x9000_0000  # wraps


def test_reserve_returns_consecutive_slots():
    _, q = make_queue()
    addrs = q.reserve(3)
    assert addrs == [0x9000_0000, 0x9000_0040, 0x9000_0080]
    assert q.free_blocks == 5


def test_reserve_commit_pop_cycle():
    _, q = make_queue(blocks=4)
    m = msg()
    addrs = q.reserve(2)
    q.commit(m, addrs)
    assert len(q) == 1
    assert q.front == (m, addrs)
    popped, freed = q.pop()
    assert popped is m and freed == addrs
    assert q.free_blocks == 4
    assert len(q) == 0


def test_fifo_order_preserved():
    _, q = make_queue()
    first, second = msg(), msg()
    a1 = q.reserve(1)
    q.commit(first, a1)
    a2 = q.reserve(1)
    q.commit(second, a2)
    assert q.pop()[0] is first
    assert q.pop()[0] is second


def test_head_addr_advances_with_pops():
    _, q = make_queue(blocks=4)
    assert q.head_addr == q.addr_of(0)
    q.commit(msg(), q.reserve(2))
    q.pop()
    assert q.head_addr == q.addr_of(2)


def test_reserve_beyond_free_raises_queue_full():
    _, q = make_queue(blocks=2)
    q.reserve(2)
    with pytest.raises(QueueFull):
        q.reserve(1)


def test_message_larger_than_queue_rejected():
    _, q = make_queue(blocks=2)
    with pytest.raises(ValueError):
        q.reserve(3)


def test_can_reserve():
    _, q = make_queue(blocks=4)
    assert q.can_reserve(4)
    q.reserve(3)
    assert q.can_reserve(1)
    assert not q.can_reserve(2)


def test_pop_empty_raises():
    _, q = make_queue()
    with pytest.raises(IndexError):
        q.pop()


def test_space_gate_pulses_on_pop():
    sim, q = make_queue(blocks=2)
    q.commit(msg(), q.reserve(2))
    woken = []

    def waiter():
        yield q.space_gate.wait()
        woken.append(sim.now)

    def popper():
        yield sim.timeout(5)
        q.pop()

    sim.process(waiter())
    sim.process(popper())
    sim.run()
    assert woken == [5]


def test_slot_wraparound_reuses_addresses():
    _, q = make_queue(blocks=4)
    for _ in range(10):
        addrs = q.reserve(2)
        q.commit(msg(), addrs)
        q.pop()
    # Cursors advanced 20 blocks; addresses stay within the 4 slots.
    assert q.addr_of(q._tail) in {q.addr_of(i) for i in range(4)}


def test_occupancy_stats():
    _, q = make_queue(blocks=8)
    q.commit(msg(), q.reserve(4))
    assert q.used_blocks == 4
    assert q.peak_occupancy == 4
    q.pop()
    assert q.used_blocks == 0
    assert q.peak_occupancy == 4
    assert q.enqueued == 1 and q.dequeued == 1


def test_blocks_for():
    _, q = make_queue()
    assert q.blocks_for(1) == 1
    assert q.blocks_for(64) == 1
    assert q.blocks_for(65) == 2
    assert q.blocks_for(256) == 4


def test_pointer_addrs_distinct_for_send_and_recv():
    from repro.ni.queue import POINTER_OFFSET, RECV_SLOT_OFFSET
    sim = Simulator()
    send_q = CoherentQueue(sim, 0x9000_0000, 8, 64, "s",
                           pointer_offset=POINTER_OFFSET)
    recv_q = CoherentQueue(sim, 0xA000_0000 + RECV_SLOT_OFFSET, 8, 64, "r",
                           pointer_offset=POINTER_OFFSET + 64)
    assert send_q.pointer_addr != recv_q.pointer_addr
    # Their direct-mapped set indices differ in a 16K-set cache.
    sets = 16384
    send_set = (send_q.pointer_addr // 64) % sets
    recv_set = (recv_q.pointer_addr // 64) % sets
    assert send_set != recv_set


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CoherentQueue(sim, 0, 0, 64)
