"""Unit tests for the node-local address map."""

import pytest

from repro.memory import AddressMap, Region
from repro.memory.address import (
    MAIN_MEMORY_BASE,
    NI_RECV_QUEUE_BASE,
    NI_REGISTER_BASE,
    NI_SEND_QUEUE_BASE,
)


def test_region_contains_and_offset():
    r = Region("r", 100, 50)
    assert r.contains(100)
    assert r.contains(149)
    assert not r.contains(150)
    assert not r.contains(99)
    assert r.offset(110) == 10
    with pytest.raises(ValueError):
        r.offset(99)


def test_region_validation():
    with pytest.raises(ValueError):
        Region("bad", 0, 0)
    with pytest.raises(ValueError):
        Region("bad", -1, 10)


def test_region_overlap_detection():
    a = Region("a", 0, 100)
    assert a.overlaps(Region("b", 50, 100))
    assert a.overlaps(Region("c", 0, 1))
    assert not a.overlaps(Region("d", 100, 10))


def test_standard_map_has_all_regions():
    amap = AddressMap.standard()
    for name in ("main_memory", "ni_registers", "ni_send_queue", "ni_recv_queue"):
        assert name in amap


def test_standard_map_lookup_by_address():
    amap = AddressMap.standard()
    assert amap.region_name(MAIN_MEMORY_BASE + 0x1000) == "main_memory"
    assert amap.region_name(NI_REGISTER_BASE) == "ni_registers"
    assert amap.region_name(NI_SEND_QUEUE_BASE + 64) == "ni_send_queue"
    assert amap.region_name(NI_RECV_QUEUE_BASE + 64) == "ni_recv_queue"
    assert amap.region_name(0xFFFF_FFF0) == "unmapped"
    assert amap.find(0xFFFF_FFF0) is None


def test_map_rejects_overlap_and_duplicates():
    amap = AddressMap()
    amap.add(Region("a", 0, 100))
    with pytest.raises(ValueError):
        amap.add(Region("b", 50, 10))
    with pytest.raises(ValueError):
        amap.add(Region("a", 1000, 10))


def test_map_iteration():
    amap = AddressMap.standard()
    names = {region.name for region in amap}
    assert "main_memory" in names and len(names) == 4
