"""Unit tests for barriers and virtual channels."""

import pytest

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.tempest import Barrier, VirtualChannel


def make_machine(nodes=4, ni_name="cni32qm"):
    return Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=nodes)


# ------------------------------------------------------------- barrier

def test_barrier_synchronises_all_nodes():
    machine = make_machine(4)
    barrier = Barrier(machine, name="t")
    exit_times = {}

    def prog(node, delay):
        yield from node.compute(delay)
        yield from barrier.wait(node)
        exit_times[node.node_id] = machine.sim.now

    procs = [
        machine.sim.process(prog(node, 1000 * (node.node_id + 1)))
        for node in machine
    ]
    machine.sim.run(until=machine.sim.all_of(procs))
    # Nobody leaves before the slowest node arrived (4000 ns).
    assert min(exit_times.values()) >= 4000


def test_barrier_is_reusable_generations():
    machine = make_machine(3)
    barrier = Barrier(machine, name="g")
    log = []

    def prog(node):
        for it in range(3):
            yield from node.compute(100 * (node.node_id + 1))
            yield from barrier.wait(node)
            log.append((it, node.node_id, machine.sim.now))

    procs = [machine.sim.process(prog(node)) for node in machine]
    machine.sim.run(until=machine.sim.all_of(procs))
    # All of generation k leaves before any of generation k+1.
    for it in range(2):
        end_k = max(t for i, _n, t in log if i == it)
        start_k1 = min(t for i, _n, t in log if i == it + 1)
        assert end_k <= start_k1


def test_single_node_barrier_is_trivial():
    machine = make_machine(1)
    barrier = Barrier(machine, name="solo")

    def prog(node):
        yield from barrier.wait(node)
        return "done"

    p = machine.sim.process(prog(machine.node(0)))
    machine.sim.run(until=p)
    assert p.value == "done"


def test_barrier_uses_12_byte_messages():
    machine = make_machine(3)
    barrier = Barrier(machine, name="sz")

    def prog(node):
        yield from barrier.wait(node)

    procs = [machine.sim.process(prog(node)) for node in machine]
    machine.sim.run(until=machine.sim.all_of(procs))
    sizes = set()
    for node in machine:
        sizes.update(node.runtime.sent_sizes.buckets())
    assert sizes == {12}


# ------------------------------------------------------------- channels

def test_channel_delivers_fragmented_payload():
    machine = make_machine(2)
    channel = VirtualChannel(machine, 0, 1, name="tch")

    def producer(node):
        yield from channel.send(1000)

    def consumer(node):
        yield from channel.wait_transfers(1)

    machine.sim.process(producer(machine.node(0)))
    done = machine.sim.process(consumer(machine.node(1)))
    machine.sim.run(until=done)
    assert channel.completed_transfers == 1
    assert channel.received_bytes == 1000
    # ceil(1000 / 248) fragments on the wire.
    assert channel.counters["fragments_sent"] == 5


def test_channel_logs_logical_size_once():
    machine = make_machine(2)
    channel = VirtualChannel(machine, 0, 1, name="tlg")

    def producer(node):
        yield from channel.send(3072)

    def consumer(node):
        yield from channel.wait_transfers(1)

    machine.sim.process(producer(machine.node(0)))
    done = machine.sim.process(consumer(machine.node(1)))
    machine.sim.run(until=done)
    sizes = machine.node(0).runtime.sent_sizes.buckets()
    assert sizes == {3080: 1}  # one logical entry, no fragment entries


def test_channel_multiple_transfers_counted():
    machine = make_machine(2)
    channel = VirtualChannel(machine, 0, 1, name="tm")

    def producer(node):
        for _ in range(3):
            yield from channel.send(500)

    def consumer(node):
        yield from channel.wait_transfers(3)

    machine.sim.process(producer(machine.node(0)))
    done = machine.sim.process(consumer(machine.node(1)))
    machine.sim.run(until=done)
    assert channel.completed_transfers == 3
    assert channel.received_bytes == 1500


def test_channel_rejects_loopback():
    machine = make_machine(2)
    with pytest.raises(ValueError):
        VirtualChannel(machine, 1, 1)


def test_channel_small_payload_single_fragment():
    machine = make_machine(2)
    channel = VirtualChannel(machine, 0, 1, name="ts")

    def producer(node):
        yield from channel.send(100)

    def consumer(node):
        yield from channel.wait_transfers(1)

    machine.sim.process(producer(machine.node(0)))
    done = machine.sim.process(consumer(machine.node(1)))
    machine.sim.run(until=done)
    assert channel.counters["fragments_sent"] == 1
