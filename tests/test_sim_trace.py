"""Unit tests for the tracer."""

from repro.sim import Simulator
from repro.sim.trace import Tracer


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    tracer.log("bus", "txn", op="read")
    assert len(tracer) == 0


def test_enabled_tracer_records_with_time():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)

    def proc():
        yield sim.timeout(30)
        tracer.log("cache0", "miss", addr=0x100)

    sim.process(proc())
    sim.run()
    assert len(tracer) == 1
    record = tracer.records[0]
    assert record.time == 30
    assert record.source == "cache0"
    assert record.detail == {"addr": 0x100}


def test_filter_by_source_and_category():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("a", "x", v=1)
    tracer.log("a", "y", v=2)
    tracer.log("b", "x", v=3)
    assert len(tracer.filter(source="a")) == 2
    assert len(tracer.filter(category="x")) == 2
    assert len(tracer.filter(source="b", category="x")) == 1
    assert tracer.filter(source="zzz") == []


def test_format_and_clear():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.log("bus", "txn", op="read", addr=16)
    text = tracer.format()
    assert "bus" in text and "op=read" in text
    tracer.clear()
    assert len(tracer) == 0


def test_format_limit():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    for i in range(10):
        tracer.log("s", "c", i=i)
    assert len(tracer.format(limit=3).splitlines()) == 3
