"""Tests for the LogP probe and the DRAM banking extension."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.memory.responders import BankModel, MainMemory
from repro.node import Machine
from repro.sim import Simulator
from repro.workloads.logp import LogPProbe, LogPSample


# ----------------------------------------------------------------- LogP

def run_probe(ni_name, payload=56):
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=2)
    workload = LogPProbe(payload_bytes=payload, samples=8, stream=30)
    return workload.run(machine=machine).extras["logp"]


def test_logp_sample_fields_populated():
    sample = run_probe("cni32qm")
    assert isinstance(sample, LogPSample)
    assert sample.o_send_ns > 0
    assert sample.o_recv_ns > 0
    assert sample.gap_ns > 0
    assert sample.delivery_ns > sample.latency_ns


def test_logp_occupancy_ordering():
    cm5 = run_probe("cm5")
    cni = run_probe("cni32qm")
    assert cm5.total_overhead_ns > cni.total_overhead_ns
    assert cni.latency_ns > cm5.latency_ns  # transfer moved into L


def test_logp_overhead_grows_with_payload_for_cm5():
    small = run_probe("cm5", payload=8)
    large = run_probe("cm5", payload=248)
    assert large.o_send_ns > 2 * small.o_send_ns


def test_logp_decomposition_is_exact():
    sample = run_probe("ap3000")
    reconstructed = sample.o_send_ns + sample.latency_ns + sample.o_recv_ns
    assert reconstructed == pytest.approx(sample.delivery_ns)


# ----------------------------------------------------------------- banking

def test_bank_reads_serialize():
    sim = Simulator()
    bank = BankModel(sim, access_ns=120)
    done = []

    def reader():
        yield from bank.read_access()
        done.append(sim.now)

    sim.process(reader())
    sim.process(reader())
    sim.run()
    assert done == [120, 240]


def test_bank_posted_write_off_critical_path_until_buffer_full():
    sim = Simulator()
    bank = BankModel(sim, access_ns=120)
    stamps = []

    def writer():
        for _ in range(BankModel.WRITE_BUFFER + 2):
            yield from bank.post_write()
            stamps.append(sim.now)

    sim.process(writer())
    sim.run()
    # The first WRITE_BUFFER posts are instantaneous; beyond that the
    # writer stalls for bank drains.
    assert stamps[BankModel.WRITE_BUFFER - 1] == 0
    assert stamps[-1] > 0
    assert bank.counters["write_stall_ns"] > 0


def test_bank_read_waits_behind_writes():
    sim = Simulator()
    bank = BankModel(sim, access_ns=120)
    done = []

    def writer():
        for _ in range(4):
            yield from bank.post_write()

    def reader():
        yield sim.timeout(1)
        yield from bank.read_access()
        done.append(sim.now)

    sim.process(writer())
    sim.process(reader())
    sim.run()
    assert done[0] > 120  # waited behind at least one write
    assert bank.counters["read_wait_ns"] > 0


def test_memory_banking_param_enables_bank():
    params = DEFAULT_PARAMS.replace(memory_banking=True)
    machine = Machine(params, DEFAULT_COSTS, "startjr", num_nodes=2)
    assert machine.node(0).main_memory.bank is not None
    plain = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "startjr", num_nodes=2)
    assert plain.node(0).main_memory.bank is None


def test_banking_slows_memory_steered_receive():
    from repro.workloads.micro import StreamBandwidth

    def bw(banked):
        params = DEFAULT_PARAMS.replace(
            flow_control_buffers=8, memory_banking=banked
        )
        machine = Machine(params, DEFAULT_COSTS, "startjr", num_nodes=2)
        workload = StreamBandwidth(payload_bytes=248, transfers=150,
                                   warmup=40)
        return workload.run(machine=machine).extras["bandwidth_mb_s"]

    assert bw(True) < bw(False)
