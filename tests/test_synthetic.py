"""Tests for the synthetic traffic generator."""

import pytest

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.workloads.synthetic import PATTERNS, SyntheticTraffic


def run_pattern(pattern, nodes=8, ni_name="cni32qm", **kwargs):
    defaults = dict(messages_per_node=20, burst=5, compute_ns=500,
                    handler_ns=50)
    defaults.update(kwargs)
    workload = SyntheticTraffic(pattern=pattern, **defaults)
    workload.num_nodes = nodes
    return workload, workload.run(
        params=DEFAULT_PARAMS, costs=DEFAULT_COSTS, ni_name=ni_name
    )


@pytest.mark.parametrize("pattern", PATTERNS)
def test_every_pattern_completes_and_delivers_all(pattern):
    workload, result = run_pattern(pattern)
    assert workload._received[0] == workload._expected
    assert result.messages_sent >= workload._expected


def test_unknown_pattern_rejected():
    with pytest.raises(ValueError):
        SyntheticTraffic(pattern="zigzag")
    with pytest.raises(ValueError):
        SyntheticTraffic(hotspot_fraction=1.5)


def test_deterministic_per_seed():
    _, a = run_pattern("uniform", seed=9)
    _, b = run_pattern("uniform", seed=9)
    assert a.elapsed_ns == b.elapsed_ns
    # Different seeds produce different destination schedules (end-to-end
    # times may coincide; the structure must not).
    w9 = SyntheticTraffic(pattern="uniform", seed=9, messages_per_node=50)
    w10 = SyntheticTraffic(pattern="uniform", seed=10, messages_per_node=50)
    assert w9._destinations(0, 8) != w10._destinations(0, 8)


def test_permutation_is_a_derangement():
    workload = SyntheticTraffic(pattern="permutation",
                                messages_per_node=5)
    dests = {
        node: workload._destinations(node, 8) for node in range(8)
    }
    targets = [d[0] for d in dests.values()]
    assert sorted(targets) == list(range(8))      # a permutation
    assert all(dests[n][0] != n for n in range(8))  # with no fixed point
    assert all(len(set(d)) == 1 for d in dests.values())


def test_hotspot_concentrates_on_node_zero():
    workload = SyntheticTraffic(pattern="hotspot", hotspot_fraction=0.9,
                                messages_per_node=200)
    to_zero = sum(
        1 for node in range(1, 8)
        for dst in workload._destinations(node, 8) if dst == 0
    )
    total = 200 * 7
    assert to_zero > 0.7 * total


def test_neighbor_targets_ring_successor():
    workload = SyntheticTraffic(pattern="neighbor", messages_per_node=3)
    assert workload._destinations(2, 8) == [3, 3, 3]
    assert workload._destinations(7, 8) == [0, 0, 0]


def test_hotspot_bounces_more_than_permutation_on_fifo_ni():
    params = DEFAULT_PARAMS.replace(flow_control_buffers=2)

    def bounces(pattern):
        workload = SyntheticTraffic(pattern=pattern, messages_per_node=25,
                                    burst=10, compute_ns=200,
                                    handler_ns=300)
        workload.num_nodes = 8
        result = workload.run(params=params, costs=DEFAULT_COSTS,
                              ni_name="cm5")
        return result.bounces

    assert bounces("hotspot") > bounces("permutation")
