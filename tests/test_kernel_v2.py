"""Kernel v2 tests: timing wheel, resume trampoline, direct handoff,
lazy cancellation, and the Timeout free-list edge cases.

The determinism contract under test: ``Simulator(scheduler="wheel")``
and the heap reference replay the *identical* event schedule — same
``(time, seq)`` key for every processed entry, same results — which
:class:`repro.sim.ScheduleDigest` checks in O(1) memory.
"""

import pytest

from repro.sim import (
    Event,
    Interrupt,
    Resource,
    ScheduleDigest,
    Simulator,
    Store,
)
from repro.sim.engine import _TIMEOUT_POOL_MAX, _WheelSimulator
from repro.sim.events import SimulationError

BOTH = pytest.mark.parametrize("scheduler", ["heap", "wheel"])


# ---------------------------------------------------------------------------
# scheduler selection
# ---------------------------------------------------------------------------

def test_scheduler_selection():
    assert Simulator().scheduler == "heap"
    assert Simulator(scheduler="heap").scheduler == "heap"
    wheel = Simulator(scheduler="wheel")
    assert wheel.scheduler == "wheel"
    assert isinstance(wheel, _WheelSimulator)
    assert isinstance(wheel, Simulator)


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="btree")


@BOTH
def test_stats_have_common_gauge_keys(scheduler):
    from repro.obs import SIM_GAUGE_KEYS

    stats = Simulator(scheduler=scheduler).stats()
    for key in SIM_GAUGE_KEYS:
        assert key in stats


# ---------------------------------------------------------------------------
# delay(): the trampoline fast path
# ---------------------------------------------------------------------------

@BOTH
def test_delay_advances_clock(scheduler):
    sim = Simulator(scheduler=scheduler)

    def proc():
        yield sim.delay(7)
        yield sim.delay(0)
        yield sim.delay(5)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert sim.now == 12 and p.value == 12


@BOTH
def test_delay_negative_rejected(scheduler):
    sim = Simulator(scheduler=scheduler)

    def proc():
        yield sim.delay(-1)

    sim.process(proc())
    with pytest.raises(ValueError):
        sim.run()


@BOTH
def test_delay_outside_process_is_an_error(scheduler):
    sim = Simulator(scheduler=scheduler)
    with pytest.raises(SimulationError):
        sim.delay(5)


@BOTH
def test_delay_interleaves_fifo_with_timeouts(scheduler):
    """delay() consumes a sequence number exactly where the Timeout it
    replaces would have, so same-timestamp FIFO order is preserved."""
    sim = Simulator(scheduler=scheduler)
    order = []

    def a():
        yield sim.delay(10)
        order.append("a")

    def b():
        yield sim.timeout(10)
        order.append("b")

    def c():
        yield sim.delay(10)
        order.append("c")

    sim.process(a())
    sim.process(b())
    sim.process(c())
    sim.run()
    assert order == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# interrupt: lazy cancellation tombstones
# ---------------------------------------------------------------------------

@BOTH
def test_interrupt_pending_delay_leaves_tombstone(scheduler):
    sim = Simulator(scheduler=scheduler)
    caught = []

    def sleeper():
        try:
            yield sim.delay(1000)
        except Interrupt as intr:
            caught.append(intr.cause)
            yield sim.delay(5)
        return sim.now

    def interrupter(target):
        yield sim.delay(3)
        target.interrupt("wake")
        assert sim.stats()["tombstones"] == 1
        assert sim.stats()["queue_live"] == sim.stats()["queue_len"] - 1

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run()
    assert caught == ["wake"]
    assert p.value == 8          # interrupted at 3, slept 5 more
    # Draining the queue still pops (and discards) the tombstone at
    # t=1000, advancing the clock exactly as the dead Timeout that the
    # trampoline entry replaces would have.
    assert sim.now == 1000
    assert sim.stats()["tombstones"] == 0  # drained on pop


@BOTH
def test_peek_skips_tombstones(scheduler):
    sim = Simulator(scheduler=scheduler)

    def sleeper():
        yield sim.delay(50)

    p = sim.process(sleeper())
    sim.step()                    # kick-off: process now waits at t=50
    p.interrupt()
    # The only live entry left is the interrupt punch at t=0; the
    # cancelled t=50 entry must not be reported.
    assert sim.peek() == 0


# ---------------------------------------------------------------------------
# direct handoff
# ---------------------------------------------------------------------------

@BOTH
def test_resource_release_handoff_value_and_order(scheduler):
    sim = Simulator(scheduler=scheduler)
    res = Resource(sim)
    order = []

    def worker(name):
        with (yield res.request()):
            order.append((name, sim.now))
            yield sim.delay(10)

    for name in "abc":
        sim.process(worker(name))
    sim.run()
    assert order == [("a", 0), ("b", 10), ("c", 20)]


@BOTH
def test_store_handoff_delivers_item(scheduler):
    sim = Simulator(scheduler=scheduler)
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.delay(4)
        store.try_put("payload")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("payload", 4)]


@BOTH
def test_handoff_ineligible_with_condition_waiter(scheduler):
    """A waiter blocked on any_of(...) has a condition ``_check``
    callback on the grant event, so the handoff fast path must decline
    and the classic succeed path must still work."""
    sim = Simulator(scheduler=scheduler)
    store = Store(sim)
    got = []

    def consumer():
        get = store.get()
        result = yield sim.any_of([get, sim.timeout(100)])
        got.append((get in result, sim.now))

    def producer():
        yield sim.delay(4)
        store.try_put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(True, 4)]


# ---------------------------------------------------------------------------
# Timeout free-list edge cases
# ---------------------------------------------------------------------------

def test_valued_timeout_never_recycled():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(5, "payload")
        assert value == "payload"

    sim.process(proc())
    sim.run()
    assert sim._timeout_pool == []


def test_timeout_with_extra_callback_never_recycled():
    sim = Simulator()
    seen = []

    def proc():
        t = sim.timeout(5)
        t.add_callback(lambda e: seen.append(sim.now))
        yield t

    sim.process(proc())
    sim.run()
    assert seen == [5]
    assert sim._timeout_pool == []


def test_condition_composed_timeout_never_recycled():
    sim = Simulator()

    def proc():
        yield sim.any_of([sim.timeout(5), sim.timeout(9)])

    sim.process(proc())
    sim.run()
    # Both timeouts carry a condition _check callback, not a bare
    # process resume — neither may enter the pool.
    assert sim._timeout_pool == []


def test_plain_timeout_recycled_and_failed_event_not():
    sim = Simulator()

    def proc():
        yield sim.timeout(5)

    sim.process(proc())
    sim.run()
    assert len(sim._timeout_pool) == 1

    # A failed (defused) event is not a Timeout and its value is an
    # exception — the recycle check must leave the pool untouched.
    def failer():
        evt = Event(sim)
        evt.fail(RuntimeError("boom"))
        try:
            yield evt
        except RuntimeError:
            pass

    sim.process(failer())
    sim.run()
    assert len(sim._timeout_pool) == 1


def test_timeout_pool_caps_at_limit():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)

    for _ in range(_TIMEOUT_POOL_MAX + 50):
        sim.process(proc())
    sim.run()
    assert len(sim._timeout_pool) == _TIMEOUT_POOL_MAX


# ---------------------------------------------------------------------------
# the wheel: overflow, window jumps, run(until=...) paths
# ---------------------------------------------------------------------------

def test_wheel_overflow_delay_fires():
    from repro.sim.engine import _WHEEL_SIZE

    sim = Simulator(scheduler="wheel")

    def proc():
        yield sim.delay(3)
        yield sim.delay(100_000)        # far beyond the wheel window
        yield sim.delay(_WHEEL_SIZE)    # lands exactly on the next window
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 3 + 100_000 + _WHEEL_SIZE
    assert sim.stats()["wheel_overflow"] == 0


def test_wheel_run_until_time_stops_exactly():
    sim = Simulator(scheduler="wheel")
    ticks = []

    def proc():
        while True:
            yield sim.delay(10)
            ticks.append(sim.now)

    sim.process(proc())
    sim.run(until=35)
    assert sim.now == 35 and ticks == [10, 20, 30]
    sim.run(until=20_000)          # crosses several window jumps
    assert sim.now == 20_000 and ticks[-1] == 20_000


@BOTH
def test_until_event_preserves_same_slot_stragglers(scheduler):
    """Stopping on a sentinel mid-timestamp must leave later
    same-timestamp entries queued (the wheel's _restore_slot path) and
    process them on the next run — identically on both schedulers."""
    sim = Simulator(scheduler=scheduler)
    evt = Event(sim)
    trace = []

    def proc():
        yield sim.delay(10)
        evt.succeed("fired")
        # Re-arms this process at the same timestamp but with a larger
        # sequence number than the sentinel — a true straggler.
        yield sim.delay(0)
        trace.append("straggler")

    sim.process(proc())
    assert sim.run(until=evt) == "fired"
    assert trace == []             # sentinel satisfied mid-timestamp
    sim.run()
    assert trace == ["straggler"]
    assert sim.now == 10


@BOTH
def test_step_returns_queue_key(scheduler):
    sim = Simulator(scheduler=scheduler)

    def proc():
        yield sim.delay(9)

    sim.process(proc())
    first = sim.step()             # kick-off entry at t=0
    second = sim.step()            # the delay at t=9
    assert first == (0, 0)
    assert second[0] == 9 and second[1] > 0


# ---------------------------------------------------------------------------
# ScheduleDigest: the A/B determinism fingerprint
# ---------------------------------------------------------------------------

def _digest_of(scheduler, rounds=20):
    sim = Simulator(scheduler=scheduler)
    res = Resource(sim)
    store = Store(sim)

    def producer():
        for i in range(rounds):
            with (yield res.request()):
                yield sim.delay(7)
            store.try_put(i)

    def consumer():
        for _ in range(rounds):
            item = yield store.get()
            yield sim.delay(3 + (item % 5) * 1000)

    sim.process(producer())
    sim.process(consumer())
    digest = ScheduleDigest()
    while sim.peek() is not None:
        digest.update(*sim.step())
    # Fold only the scheduler-agnostic gauges (the wheel's stats() has
    # extra wheel_* keys that would trivially differ).
    from repro.obs import SIM_GAUGE_KEYS

    stats = sim.stats()
    digest.update_snapshot({k: stats[k] for k in SIM_GAUGE_KEYS})
    return digest


def test_schedule_digest_heap_equals_wheel():
    heap, wheel = _digest_of("heap"), _digest_of("wheel")
    assert heap.count == wheel.count
    assert heap == wheel


def test_schedule_digest_detects_divergence():
    assert _digest_of("heap", rounds=20) != _digest_of("heap", rounds=21)


def test_workload_launch_matches_run():
    """Step-driving a launched workload replays run() exactly."""
    from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
    from repro.node import Machine
    from repro.workloads.micro import PingPong

    def build(scheduler):
        params = DEFAULT_PARAMS.replace(sim_scheduler=scheduler)
        return Machine(params, DEFAULT_COSTS, "cni32qm", num_nodes=2)

    machine = build("heap")
    reference = PingPong(payload_bytes=8, rounds=3, warmup=1).run(machine)

    digests = {}
    for scheduler in ("heap", "wheel"):
        machine = build(scheduler)
        workload = PingPong(payload_bytes=8, rounds=3, warmup=1)
        done = workload.launch(machine)
        digest = ScheduleDigest()
        while not done.processed:
            digest.update(*machine.sim.step())
        result = workload.collect(machine)
        digest.update_snapshot(machine.metrics_snapshot())
        digests[scheduler] = digest
        assert result.elapsed_ns == reference.elapsed_ns
    assert digests["heap"] == digests["wheel"]
