"""Capture/replay: codec round-trips, bit-exact replay, mismatch
reports, and the run-diff analysis."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.experiments.parallel import Job, freeze_kwargs, run_cell
from repro.faults.config import FaultConfig
from repro.replay import (
    CAPTURE_MAGIC,
    CAPTURE_SCHEMA,
    ReplayMismatch,
    capture_result,
    capture_run,
    job_from_capture,
    read_capture,
    replay,
    write_capture,
)


def _job(**overrides):
    base = dict(
        label="replay:pingpong",
        ni="cni32qm",
        workload="pingpong",
        params=DEFAULT_PARAMS,
        costs=DEFAULT_COSTS,
        kwargs=freeze_kwargs({"payload_bytes": 64, "rounds": 5}),
    )
    base.update(overrides)
    return Job(**base)


# ------------------------------------------------- capture round-trip


_probs = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    drop=_probs,
    corrupt=_probs,
    fcb=st.integers(min_value=1, max_value=64),
    timeline_ns=st.sampled_from([0, 1000, 12345]),
    flight=st.integers(min_value=0, max_value=256),
    payload=st.integers(min_value=1, max_value=4096),
)
@settings(max_examples=30, deadline=None)
def test_capture_file_round_trips_any_spec(
    tmp_path_factory, seed, drop, corrupt, fcb, timeline_ns, flight,
    payload,
):
    params = DEFAULT_PARAMS.replace(
        flow_control_buffers=fcb,
        timeline_ns=timeline_ns,
        timeline_paths=("node0.", "net.") if timeline_ns else None,
        flight_recorder=flight,
        faults=FaultConfig(seed=seed, drop_prob=drop,
                           corrupt_prob=corrupt),
    )
    job = _job(
        params=params,
        kwargs=freeze_kwargs({"payload_bytes": payload, "rounds": 3}),
        collect_digest=True,
    )

    class _FakeResult:
        digest = {"schedule": "ab" * 16, "events": 12345}
        metrics = {"node0.ni.messages_sent": 3.0, "net.delivered": 6}
        elapsed_ns = 98765

    capture = capture_result(job, _FakeResult())
    path = str(tmp_path_factory.mktemp("cap") / "cell.rprc")
    write_capture(path, capture)
    with open(path, "rb") as fh:
        assert fh.read(4) == CAPTURE_MAGIC
    loaded = read_capture(path)
    assert loaded == capture
    assert loaded["schema"] == CAPTURE_SCHEMA

    rebuilt = job_from_capture(loaded)
    assert rebuilt.params == job.params
    assert rebuilt.costs == job.costs
    assert rebuilt.kwargs == job.kwargs
    assert rebuilt.label == job.label
    assert rebuilt.collect_digest


def test_capture_requires_digest():
    job = _job()
    result = run_cell(job)  # no collect_digest
    with pytest.raises(ValueError, match="digest"):
        capture_result(job, result)


def test_read_capture_rejects_garbage(tmp_path):
    path = tmp_path / "bad.rprc"
    path.write_bytes(b"JUNKdata")
    with pytest.raises(ValueError, match="magic"):
        read_capture(str(path))
    path.write_bytes(CAPTURE_MAGIC + bytes([99]))
    with pytest.raises(ValueError, match="version"):
        read_capture(str(path))


# ------------------------------------------------------------ replay


def test_replay_reproduces_plain_cell(tmp_path):
    result, capture = capture_run(_job())
    path = write_capture(str(tmp_path / "plain.rprc"), capture)
    report = replay(path)
    assert report.ok and report.digest_match and report.metrics_match
    assert report.actual_digest == capture["digest"]
    assert "OK" in report.summary()


def test_replay_reproduces_chaos_cell(tmp_path):
    chaos = DEFAULT_PARAMS.replace(
        faults=FaultConfig(seed=1998, drop_prob=0.05, duplicate_prob=0.02)
    )
    _result, capture = capture_run(_job(params=chaos, label="replay:chaos"))
    path = write_capture(str(tmp_path / "chaos.rprc"), capture)
    assert replay(path).ok


def test_replay_reproduces_sharded_cell(tmp_path):
    job = Job(
        label="replay:halo4",
        ni="cni32qm",
        workload="halo",
        params=DEFAULT_PARAMS.replace(ordered_delivery=True,
                                      flow_control_buffers=8),
        costs=DEFAULT_COSTS,
        num_nodes=16,
        shards=4,
        kwargs=freeze_kwargs(
            {"compute_ns": 1000, "iterations": 2, "payload_bytes": 32}
        ),
    )
    _result, capture = capture_run(job)
    assert capture["kind"] == "sharded"
    assert len(capture["digest"]["kernel"]) == 4
    path = write_capture(str(tmp_path / "halo.rprc"), capture)
    report = replay(path)
    assert report.ok


def test_replay_mismatch_is_structured(tmp_path):
    _result, capture = capture_run(_job())
    capture["digest"]["schedule"] = "00" * 32
    capture["metrics"]["node0.ni.messages_sent"] = -1
    with pytest.raises(ReplayMismatch) as exc_info:
        replay(capture)
    report = exc_info.value.report
    assert not report.ok and not report.digest_match
    assert "node0.ni.messages_sent" in report.metric_deltas
    assert "MISMATCH" in str(exc_info.value)
    # Non-strict mode returns the same report instead of raising.
    assert not replay(capture, strict=False).ok


def test_replay_reports_version_skew(tmp_path):
    _result, capture = capture_run(_job())
    capture["repro_version"] = "0.0.1"
    report = replay(capture)
    assert report.ok  # skew is context, not failure
    assert report.version_skew == ("0.0.1", __import__("repro").__version__)


def test_api_replay_facade(tmp_path):
    from repro import api

    _result, capture = capture_run(_job())
    path = write_capture(str(tmp_path / "cell.rprc"), capture)
    assert api.replay(path).ok


def test_runner_replay_subcommand(tmp_path, capsys):
    from repro.experiments.runner import main

    _result, capture = capture_run(_job())
    path = write_capture(str(tmp_path / "cell.rprc"), capture)
    assert main(["replay", path]) == 0
    assert "replay OK" in capsys.readouterr().out
    capture["digest"]["schedule"] = "00" * 32
    bad = write_capture(str(tmp_path / "bad.rprc"), capture)
    assert main(["replay", bad]) == 1
    assert main(["replay"]) == 2
    assert main(["replay", str(tmp_path / "missing.rprc")]) == 2


def test_runner_capture_flag_writes_replayable_files(tmp_path):
    from repro.experiments.runner import main
    from repro.replay import replay as replay_fn

    capture_dir = tmp_path / "captures"
    code = main([
        "table5-latency", "--quick", "--no-cache",
        "--capture", str(capture_dir),
        "--json", str(tmp_path / "results.json"),
    ])
    assert code == 0
    files = sorted(os.listdir(capture_dir))
    assert files and all(f.endswith(".rprc") for f in files)
    report = replay_fn(str(capture_dir / files[0]))
    assert report.ok
    # Manifest records the capture directory.
    import json

    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["outputs"]["capture"] == str(capture_dir)
    assert "replay_of" in manifest


# ---------------------------------------------------------- diff_runs


def test_diff_runs_identical_and_divergent():
    from repro.analysis import diff_runs

    params = DEFAULT_PARAMS.replace(timeline_ns=5000, spans=True)
    a = run_cell(_job(params=params))
    b = run_cell(_job(params=params))
    diff = diff_runs(a, b)
    assert diff.identical
    assert "identical" in diff.format()

    c = run_cell(_job(
        params=params,
        kwargs=freeze_kwargs({"payload_bytes": 256, "rounds": 5}),
    ))
    diff = diff_runs(a, c)
    assert not diff.identical
    assert diff.metric_deltas
    assert diff.first_divergence_ns is not None
    assert diff.first_divergence_ns % 5000 == 0
    assert diff.span_phase_deltas  # bigger payload moves wire time
    assert "differ" in diff.format()


def test_diff_runs_works_on_jsonable_dicts():
    from repro.analysis import diff_runs

    a = run_cell(_job())
    assert diff_runs(a.to_jsonable(), a.to_jsonable()).identical


def test_diff_runs_rejects_interval_mismatch():
    from repro.analysis import diff_runs

    a = run_cell(_job(params=DEFAULT_PARAMS.replace(timeline_ns=1000)))
    b = run_cell(_job(params=DEFAULT_PARAMS.replace(timeline_ns=2000)))
    with pytest.raises(ValueError, match="interval"):
        diff_runs(a, b)
