"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim import Simulator, Timeout
from repro.sim.events import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_run_empty_queue_is_noop():
    sim = Simulator()
    sim.run()
    assert sim.now == 0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(25)

    sim.process(proc())
    sim.run()
    assert sim.now == 25


def test_timeout_zero_is_legal():
    sim = Simulator()

    def proc():
        yield sim.timeout(0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -1)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10)

    sim.process(proc())
    sim.run(until=35)
    assert sim.now == 35


def test_run_until_time_processes_events_at_boundary():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(10)
        seen.append(sim.now)

    sim.process(proc())
    sim.run(until=10)
    assert seen == [10]


def test_run_until_past_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(50)

    sim.process(proc())
    sim.run(until=40)
    with pytest.raises(SimulationError):
        sim.run(until=30)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(7)
        return "payload"

    p = sim.process(proc())
    assert sim.run(until=p) == "payload"
    assert sim.now == 7


def test_run_until_event_that_never_fires_raises():
    sim = Simulator()
    orphan = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=orphan)


def test_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_determinism_across_runs():
    def build_and_run():
        sim = Simulator()
        log = []

        def worker(tag, period):
            for _ in range(5):
                yield sim.timeout(period)
                log.append((sim.now, tag))

        sim.process(worker("x", 3))
        sim.process(worker("y", 5))
        sim.process(worker("z", 3))
        sim.run()
        return log

    assert build_and_run() == build_and_run()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(12)
    assert sim.peek() == 12


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_process_spawning():
    sim = Simulator()
    results = []

    def child(n):
        yield sim.timeout(n)
        return n * 2

    def parent():
        outcomes = []
        for n in (1, 2, 3):
            outcomes.append((yield sim.process(child(n))))
        results.extend(outcomes)

    sim.process(parent())
    sim.run()
    assert results == [2, 4, 6]
    assert sim.now == 6
