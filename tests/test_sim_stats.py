"""Unit tests for counters, histograms and state timers."""

import pytest

from repro.sim import Counter, Histogram, Simulator, StateTimer
from repro.sim.stats import breakdown_fractions, merge_state_totals


# ---------------------------------------------------------------- Counter

def test_counter_basic():
    c = Counter()
    c.add("msgs")
    c.add("msgs", 4)
    assert c["msgs"] == 5
    assert c["absent"] == 0
    assert "msgs" in c and "absent" not in c


def test_counter_reset_and_dict():
    c = Counter()
    c.add("a", 2)
    assert c.as_dict() == {"a": 2}
    c.reset()
    assert c.as_dict() == {}


# ---------------------------------------------------------------- Histogram

def test_histogram_stats():
    h = Histogram()
    h.extend([1, 2, 3, 4, 5])
    assert h.count == 5
    assert h.mean == 3
    assert h.minimum == 1
    assert h.maximum == 5
    assert h.median == 3


def test_histogram_percentile_nearest_rank():
    h = Histogram()
    h.extend(range(1, 101))
    assert h.percentile(0.99) == 99
    assert h.percentile(1.0) == 100
    assert h.percentile(0.0) == 1


def test_histogram_percentile_validation():
    h = Histogram()
    h.add(1)
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_empty_raises():
    h = Histogram()
    with pytest.raises(ValueError):
        _ = h.mean
    with pytest.raises(ValueError):
        h.percentile(0.5)


def test_histogram_buckets_and_fraction():
    h = Histogram()
    h.add(12, count=67)
    h.add(32, count=33)
    assert h.buckets() == {12: 67, 32: 33}
    assert h.fraction_of(12) == pytest.approx(0.67)
    assert h.fraction_of(99) == 0.0


# ---------------------------------------------------------------- StateTimer

def test_state_timer_attribution():
    sim = Simulator()
    timer = StateTimer(sim, initial="compute")

    def proc():
        yield sim.timeout(10)          # 10 compute
        timer.enter("send")
        yield sim.timeout(4)           # 4 send
        timer.enter("compute")
        yield sim.timeout(6)           # 6 compute
        timer.finish()

    sim.process(proc())
    sim.run()
    assert timer.total("compute") == 16
    assert timer.total("send") == 4


def test_state_timer_push_pop_nesting():
    sim = Simulator()
    timer = StateTimer(sim, initial="compute")

    def proc():
        timer.enter("send")
        yield sim.timeout(5)
        timer.push("buffering")        # stall in the middle of a send
        yield sim.timeout(20)
        timer.pop()                    # back to "send"
        yield sim.timeout(5)
        timer.finish()

    sim.process(proc())
    sim.run()
    assert timer.total("send") == 10
    assert timer.total("buffering") == 20


def test_state_timer_fractions_sum_to_one():
    sim = Simulator()
    timer = StateTimer(sim)

    def proc():
        yield sim.timeout(30)
        timer.enter("send")
        yield sim.timeout(70)
        timer.finish()

    sim.process(proc())
    sim.run()
    fractions = timer.fractions()
    assert fractions == {"compute": 0.3, "send": 0.7}
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_state_timer_frozen_after_finish():
    """A finished timer ignores transitions instead of raising:
    abandoned node generators (e.g. after a DeliveryFailure) unwind
    their finally blocks through enter(), and that cleanup must not
    turn a structured failure into a crash."""
    sim = Simulator()
    timer = StateTimer(sim)
    timer.finish()
    before = timer.totals()
    timer.enter("send")
    assert timer.totals() == before
    assert timer.state == "compute"


def test_merge_and_breakdown():
    sim = Simulator()
    t1 = StateTimer(sim)
    t2 = StateTimer(sim)

    def proc():
        yield sim.timeout(10)
        t1.enter("send")
        t2.enter("recv")
        yield sim.timeout(10)
        t1.finish()
        t2.finish()

    sim.process(proc())
    sim.run()
    merged = merge_state_totals([t1, t2])
    assert merged == {"compute": 20, "send": 10, "recv": 10}
    groups = {"compute": ("compute",), "data_transfer": ("send", "recv")}
    fractions = breakdown_fractions(merged, groups)
    assert fractions["compute"] == pytest.approx(0.5)
    assert fractions["data_transfer"] == pytest.approx(0.5)


def test_breakdown_empty_is_empty():
    assert breakdown_fractions({}) == {}
