"""Flight recorder, timeline telemetry, sharded spans, and the
schema-2 manifest."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.config import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.faults.config import FaultConfig
from repro.obs.flight import FLIGHT_SCHEMA, FlightRecorder
from repro.obs.timeline import TimelineSampler, merge_timelines


# ------------------------------------------------- flight recorder


def test_flight_ring_bounds_and_eviction():
    ring = FlightRecorder(4)
    assert len(ring) == 0
    for i in range(10):
        ring.log(i * 100, f"src{i}", "cat", {"i": i})
    assert len(ring) == 4
    assert ring.recorded == 10
    records = ring.records()
    # Oldest-first, and only the *last* four survive.
    assert [r[3]["i"] for r in records] == [6, 7, 8, 9]
    payload = ring.to_jsonable()
    assert payload["schema"] == FLIGHT_SCHEMA
    assert payload["capacity"] == 4
    assert payload["evicted"] == 6
    ring.clear()
    assert len(ring) == 0 and ring.recorded == 0


@given(
    capacity=st.integers(min_value=1, max_value=64),
    count=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=40, deadline=None)
def test_flight_ring_always_keeps_last_capacity(capacity, count):
    ring = FlightRecorder(capacity)
    for i in range(count):
        ring.log(i, "s", "c", {"i": i})
    kept = [r[3]["i"] for r in ring.records()]
    assert kept == list(range(max(0, count - capacity), count))


def test_flight_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(0)


def test_flight_recorder_survives_fault_storm():
    """A heavy fault storm overflows the ring by orders of magnitude;
    the ring must stay bounded and keep only the newest records."""
    params = DEFAULT_PARAMS.replace(
        flight_recorder=64,
        faults=FaultConfig(seed=7, drop_prob=0.2, duplicate_prob=0.1,
                           ack_drop_prob=0.1),
    )
    result = api.run_workload(
        ni="cni32qm", workload="pingpong", payload_bytes=64, rounds=50,
        params=params,
    )
    flight = result.machine.flight
    assert flight is not None
    assert len(flight) == 64
    assert flight.recorded > 64  # storms overflow the ring
    times = [r[0] for r in flight.records()]
    assert times == sorted(times)  # oldest-first ordering preserved
    # Ring-only mode: the unbounded trace list stayed empty.
    assert result.machine.network.tracer.records == []


def test_flight_ring_does_not_break_full_tracing():
    params = DEFAULT_PARAMS.replace(tracing=True, flight_recorder=8)
    result = api.run_workload(
        ni="cni32qm", workload="pingpong", payload_bytes=16, rounds=3,
        params=params,
    )
    tracer = result.machine.network.tracer
    assert tracer.full and tracer.records  # full list still recorded
    assert len(result.machine.flight) <= 8


def test_spans_tap_into_flight_ring():
    params = DEFAULT_PARAMS.replace(spans=True, flight_recorder=128)
    result = api.run_workload(
        ni="cni32qm", workload="pingpong", payload_bytes=16, rounds=3,
        params=params,
    )
    categories = {r[2] for r in result.machine.flight.records()}
    assert "span" in categories


# ----------------------------------------------------- timeline


def _run(params, **kwargs):
    defaults = dict(ni="cni32qm", workload="pingpong",
                    payload_bytes=64, rounds=10)
    defaults.update(kwargs)
    return api.run_workload(params=params, **defaults)


def test_timeline_sampler_columnar_shape():
    result = _run(DEFAULT_PARAMS.replace(timeline_ns=5000))
    payload = result.machine.timeline_jsonable()
    assert payload["interval_ns"] == 5000
    assert payload["ticks"]
    assert payload["ticks"] == [
        5000 * (i + 1) for i in range(len(payload["ticks"]))
    ]
    assert payload["series"]
    for path, series in payload["series"].items():
        assert len(series) == len(payload["ticks"])
    # Counters are cumulative: series never decrease, and the last
    # boundary reading never exceeds the end-of-run snapshot (events
    # after the final boundary are not in any sample).
    sent = payload["series"]["node0.ni.messages_sent"]
    assert sent == sorted(sent)
    assert 0 < sent[-1] <= result.metrics["node0.ni.messages_sent"]


def test_timeline_path_prefix_filter():
    result = _run(DEFAULT_PARAMS.replace(
        timeline_ns=5000, timeline_paths=("node0.ni.", "net.")
    ))
    payload = result.machine.timeline_jsonable()
    assert payload["series"]
    assert all(
        k.startswith(("node0.ni.", "net.")) for k in payload["series"]
    )


def test_timeline_never_perturbs_the_schedule():
    """Sampling must be pure observation: the kernel digest with the
    timeline on equals the digest with it off."""
    from repro.experiments.parallel import Job, freeze_kwargs, run_cell

    def digest(params):
        job = Job(label="tl:digest", ni="cni32qm", workload="pingpong",
                  params=params, costs=DEFAULT_COSTS,
                  kwargs=freeze_kwargs({"payload_bytes": 64, "rounds": 10}),
                  collect_digest=True)
        return run_cell(job).digest["schedule"]

    assert digest(DEFAULT_PARAMS) == \
        digest(DEFAULT_PARAMS.replace(timeline_ns=3000))


def test_timeline_merge_sums_leafwise():
    a = {"schema": 1, "interval_ns": 100, "end_ns": 300,
         "ticks": [100, 200, 300],
         "series": {"x": [1, 2, 3], "only_a": [5, 5, 5]}}
    b = {"schema": 1, "interval_ns": 100, "end_ns": 200,
         "ticks": [100, 200],
         "series": {"x": [10, 20]}}
    merged = merge_timelines([a, b])
    assert merged["ticks"] == [100, 200, 300]
    # Shorter series hold their last value across the tail.
    assert merged["series"]["x"] == [11, 22, 23]
    assert merged["series"]["only_a"] == [5, 5, 5]
    with pytest.raises(ValueError, match="interval"):
        merge_timelines([a, {**b, "interval_ns": 999}])


def test_timeline_partition_invariant_under_sharding():
    def merged_timeline(shards):
        result = api.run_sharded(
            ni="cni32qm", workload="halo", num_nodes=16, shards=shards,
            params=DEFAULT_PARAMS.replace(timeline_ns=2000,
                                          flow_control_buffers=8),
            transport="inline",
            compute_ns=1000, iterations=2, payload_bytes=32,
        )
        return result.timeline

    one, four = merged_timeline(1), merged_timeline(4)
    assert one is not None and one["series"]
    assert one == four


# ------------------------------------------------- sharded spans


def _sharded_spans(shards, transport="inline"):
    result = api.run_sharded(
        ni="cni32qm", workload="halo", num_nodes=16, shards=shards,
        params=DEFAULT_PARAMS.replace(spans=True, flow_control_buffers=8),
        transport=transport,
        compute_ns=1000, iterations=2, payload_bytes=32,
    )
    return result.spans


def test_sharded_spans_identical_at_any_shard_count():
    one = _sharded_spans(1)
    assert one  # spans actually recorded
    blob = json.dumps(one, sort_keys=True)
    for shards in (2, 4):
        assert json.dumps(_sharded_spans(shards), sort_keys=True) == blob


def test_sharded_spans_identical_across_transports():
    inline = _sharded_spans(2, transport="inline")
    fork = _sharded_spans(2, transport="fork")
    assert inline == fork


def test_sharded_spans_have_phases_and_ordinals():
    spans = _sharded_spans(2)
    assert all("ordinal" in s for s in spans)
    phases = set()
    for span in spans:
        phases.update(span["phases"])
    assert "wire" in phases and "handler" in phases
    # Renumbered ids are dense from 0.
    assert sorted(s["span_id"] for s in spans) == list(range(len(spans)))


# -------------------------------------------------- manifest schema


def test_manifest_schema_3_has_replay_of_and_retry():
    from repro.obs.export import (
        MANIFEST_KEYS,
        SCHEMA_VERSION,
        build_manifest,
        validate_manifest,
    )

    assert SCHEMA_VERSION == 3
    manifest = build_manifest(
        experiments=["x"], quick=False, jobs=1, cells=[],
        wall_time_s=0.0, cache_enabled=False, cache_hits=0,
        cache_misses=0, outputs={}, replay_of="some/cell.rprc",
    )
    assert manifest["schema"] == 3
    assert manifest["replay_of"] == "some/cell.rprc"
    assert manifest["retry"]["retry_limit"] == 1
    assert set(manifest) == set(MANIFEST_KEYS)
    assert validate_manifest(manifest) == []


def test_manifest_records_custom_retry_policy():
    from repro.experiments.parallel import RetryPolicy
    from repro.obs.export import build_manifest, validate_manifest

    policy = RetryPolicy(retry_limit=4, job_timeout_s=7.5,
                         quarantine_attempts=2)
    manifest = build_manifest(
        experiments=["x"], quick=False, jobs=1, cells=[],
        wall_time_s=0.0, cache_enabled=False, cache_hits=0,
        cache_misses=0, outputs={}, retry_policy=policy,
    )
    assert manifest["retry"] == policy.to_jsonable()
    assert RetryPolicy.from_jsonable(manifest["retry"]) == policy
    assert validate_manifest(manifest) == []


def test_validate_manifest_accepts_old_schemas():
    """Backward compat: manifests written before the capture/timeline
    outputs (schema 1, no ``replay_of``) and before the retry-policy
    record (schema 2, no ``retry``) still validate."""
    from repro.obs.export import build_manifest, validate_manifest

    manifest = build_manifest(
        experiments=["x"], quick=False, jobs=1, cells=[],
        wall_time_s=0.0, cache_enabled=False, cache_hits=0,
        cache_misses=0, outputs={},
    )
    two = {k: v for k, v in manifest.items() if k != "retry"}
    two["schema"] = 2
    assert validate_manifest(two) == []
    old = {k: v for k, v in two.items() if k != "replay_of"}
    old["schema"] = 1
    assert validate_manifest(old) == []
    # A schema-1 manifest that *does* carry schema-2 keys is flagged.
    extra = dict(old)
    extra["replay_of"] = None
    assert validate_manifest(extra)
