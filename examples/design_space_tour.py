#!/usr/bin/env python
"""A guided tour of the paper's five design parameters.

One small experiment per parameter, each isolating that parameter with
the NIs that differ on it — the whole argument of the paper in five
measurements:

1. size of transfer            (uncached words vs 64-byte blocks)
2. who manages the transfer    (processor occupancy via LogP)
3. source/destination          (who supplies the consumer's loads)
4. location of NI buffers      (flow-control sensitivity)
5. processor involvement in buffering (who pays for bounced messages)

Run:  python examples/design_space_tour.py
"""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.workloads.logp import LogPProbe
from repro.workloads.micro import PingPong, StreamBandwidth
from repro.workloads.registry import create as make_workload


def machine_for(ni_name, fcb=8):
    params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
    return Machine(params, DEFAULT_COSTS, ni_name, num_nodes=2)


def rt(ni_name, payload):
    workload = PingPong(payload_bytes=payload, rounds=60)
    return workload.run(machine=machine_for(ni_name)).extras["round_trip_us"]


def logp(ni_name):
    workload = LogPProbe(payload_bytes=56, samples=15, stream=40)
    return workload.run(machine=machine_for(ni_name)).extras["logp"]


def section(title):
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    print("The five NI design parameters (Mukherjee & Hill, HPCA 1998)")

    section("1. Size of transfer: words vs blocks (248B payload)")
    cm5 = rt("cm5", 248)
    ap = rt("ap3000", 248)
    print(f"  NI_2w (8B uncached words):      {cm5:.2f} us round trip")
    print(f"  NI_16w+Blkbuf (64B blocks):     {ap:.2f} us round trip")
    print(f"  -> wide transfers win by {cm5 / ap:.1f}x on large messages")

    section("2. Who manages the transfer: processor occupancy per message")
    ap_sample = logp("ap3000")
    cni_sample = logp("cni32qm")
    print(f"  AP3000 (processor-managed): o = {ap_sample.total_overhead_ns:.0f} ns,"
          f" L = {ap_sample.latency_ns:.0f} ns")
    print(f"  CNI_32Qm (NI-managed):      o = {cni_sample.total_overhead_ns:.0f} ns,"
          f" L = {cni_sample.latency_ns:.0f} ns")
    print("  -> the NI-managed design moves the bytes off the processor;")
    print("     the freed cycles are compute the application keeps.")

    section("3. Source/destination: who answers the consumer's loads")
    for ni_name in ("startjr", "cni32qm"):
        machine = machine_for(ni_name)
        StreamBandwidth(payload_bytes=248, transfers=60).run(machine=machine)
        bus = machine.node(1).bus
        from_memory = bus.counters["flow:memory->cache"]
        from_ni_cache = bus.counters["flow:ni_cache->cache"]
        print(f"  {ni_name:9s}: {from_memory:4d} blocks from main memory, "
              f"{from_ni_cache:4d} from the NI cache")
    print("  -> CNI_32Qm steers messages cache-to-cache (85 ns) instead of")
    print("     through 120 ns DRAM; that is the receive-latency gap.")

    section("4. Location of NI buffers: flow-control sensitivity (em3d)")
    for ni_name in ("cm5", "cni32qm"):
        times = {}
        for fcb in (1, None):
            params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
            result = make_workload("em3d", iterations=1).run(
                params=params, costs=DEFAULT_COSTS, ni_name=ni_name
            )
            times[fcb] = result.elapsed_us
        penalty = times[1] / times[None]
        print(f"  {ni_name:9s}: fcb=1 costs {penalty:.2f}x vs infinite buffering")
    print("  -> buffering in NI fifos is scarce; buffering in main memory")
    print("     is plentiful, so the coherent NI barely notices.")

    section("5. Processor involvement in buffering: who pays for bounces")
    for ni_name in ("cm5", "cni32qm"):
        params = DEFAULT_PARAMS.replace(flow_control_buffers=1)
        machine = Machine(params, DEFAULT_COSTS, ni_name, num_nodes=2)
        result = make_workload("em3d", iterations=1).run(machine=machine)
        retries = sum(n.ni.counters["processor_retries"] for n in machine)
        buffering_us = sum(
            n.timer.total("buffering") for n in machine
        ) / 1000
        print(f"  {ni_name:9s}: {result.bounces:5d} bounces, "
              f"{retries:5d} retried by the processor, "
              f"{buffering_us:7.1f} us of processor buffering time")
    print("  -> on the fifo NI the processor itself re-pushes bounced")
    print("     messages; the coherent NI's engine does it for free.")


if __name__ == "__main__":
    main()
