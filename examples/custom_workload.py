#!/usr/bin/env python
"""Build a custom workload on the public API.

Shows the three Tempest layers an application can mix, exactly as the
paper's macrobenchmarks do:

1. raw active messages (a work-stealing ping between nodes),
2. the invalidation-based software shared memory (a read-mostly
   lookup table with one writer),
3. a virtual channel (bulk result shipping), plus barriers.

The workload subclasses :class:`repro.workloads.base.Workload`, so it
gets the same measurement machinery as the built-in macrobenchmarks —
state breakdown, message-size histogram, bounce counts — and can be
run against any NI.

Run:  python examples/custom_workload.py
"""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.tempest import Barrier, SharedMemory, VirtualChannel
from repro.workloads.base import Workload


class PipelineWorkload(Workload):
    """A three-stage pipeline across the machine.

    Stage 1 (all nodes): read a shared configuration table from node 0
    via the DSM.  Stage 2: each node processes work items, signalling
    the next node with small active messages.  Stage 3: everyone ships
    a bulk result block to node 0 over a virtual channel.
    """

    name = "pipeline"

    def __init__(self, items_per_node: int = 20, result_bytes: int = 2000):
        self.items_per_node = items_per_node
        self.result_bytes = result_bytes

    def prepare(self, machine) -> None:
        self.barrier = Barrier(machine, name="pipe_bar")
        self.table = SharedMemory(machine, block_payload_bytes=48,
                                  name="pipe_table")
        self.results = {
            node.node_id: VirtualChannel(machine, node.node_id, 0,
                                         name=f"pipe_res{node.node_id}")
            for node in machine if node.node_id != 0
        }
        self.tokens_seen = [0] * len(machine)

        def on_token(rt, msg):
            self.tokens_seen[rt.node.node_id] += 1

        for node in machine:
            node.runtime.register_handler("pipe_token", on_token)

    def node_main(self, machine, node):
        me = node.node_id
        n = len(machine)

        # Stage 1: everyone reads 8 config blocks homed at node 0.
        for block in range(8):
            yield from self.table.read(node, home=0, block=block)
        yield from self.barrier.wait(node)

        # Stage 2: process items; signal the downstream neighbour with
        # a 12-byte token after each item.
        downstream = (me + 1) % n
        for _ in range(self.items_per_node):
            yield from node.compute(1_500)
            yield from node.runtime.send(downstream, "pipe_token", 4)
        yield from node.runtime.wait_for(
            lambda: self.tokens_seen[me] >= self.items_per_node
        )
        yield from self.barrier.wait(node)

        # Stage 3: ship results to node 0 in bulk.
        if me != 0:
            yield from self.results[me].send(self.result_bytes)
        else:
            for channel in self.results.values():
                yield from channel.wait_transfers(1)
        yield from self.shutdown(machine, node, self.barrier)


def main() -> None:
    for ni_name in ("ap3000", "cni32qm"):
        result = PipelineWorkload().run(
            params=DEFAULT_PARAMS, costs=DEFAULT_COSTS, ni_name=ni_name
        )
        print(f"{ni_name}: {result.elapsed_us:.1f} us, "
              f"{result.messages_sent} messages, "
              f"{result.bounces} bounces")
        for state, share in sorted(result.breakdown().items()):
            print(f"    {state:<14} {share * 100:5.1f}%")
    print()
    print("Same program, two NIs: the coherent NI wins on the")
    print("fine-grain stages, the block-transfer NI closes the gap on")
    print("the bulk stage — the relative-importance point of Section 6.")


if __name__ == "__main__":
    main()
