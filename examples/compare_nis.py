#!/usr/bin/env python
"""Compare every NI on the two microbenchmarks (a mini Table 5).

Sweeps the seven memory-bus NIs (plus the register-mapped single-cycle
NI_2w) over round-trip latency and streaming bandwidth and prints a
Table 5-style summary, demonstrating the data-transfer parameter
effects: block vs word transfers, processor- vs NI-managed transfers,
and where the data lands.

Run:  python examples/compare_nis.py [--fast]
"""

import sys

from repro import ALL_NI_NAMES, DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.workloads.micro import PingPong, StreamBandwidth

NIS = ALL_NI_NAMES + ("cm5-1cyc",)
LATENCY_PAYLOADS = (8, 64, 248)
BANDWIDTH_PAYLOAD = 248


def machine_for(ni_name: str) -> Machine:
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, ni_name, num_nodes=2)
    if ni_name == "udma":
        # Microbenchmark convention: characterise pure UDMA.
        for node in machine:
            node.ni.always_udma = True
    return machine


def main() -> None:
    fast = "--fast" in sys.argv
    rounds = 30 if fast else 150
    transfers = 40 if fast else 150

    header = (
        f"{'NI':<24}"
        + "".join(f"RT {p:>4}B(us)  " for p in LATENCY_PAYLOADS)
        + f"BW {BANDWIDTH_PAYLOAD}B(MB/s)"
    )
    print(header)
    print("-" * len(header))
    for ni_name in NIS:
        latencies = []
        for payload in LATENCY_PAYLOADS:
            workload = PingPong(payload_bytes=payload, rounds=rounds)
            result = workload.run(machine=machine_for(ni_name))
            latencies.append(result.extras["round_trip_us"])
        bw = StreamBandwidth(
            payload_bytes=BANDWIDTH_PAYLOAD, transfers=transfers
        ).run(machine=machine_for(ni_name)).extras["bandwidth_mb_s"]
        row = f"{ni_name:<24}"
        row += "".join(f"{lat:>10.2f}   " for lat in latencies)
        row += f"{bw:>12.0f}"
        print(row)

    print()
    print("Things to notice (Section 6.1 of the paper):")
    print(" - cm5 (uncached words) collapses as messages grow;")
    print(" - udma only pays off above the ~96B initiation breakeven;")
    print(" - ap3000 vs startjr cross over around 64B payloads;")
    print(" - cni32qm has the best latency at every size;")
    print(" - cm5-1cyc shows what register mapping buys on latency —")
    print("   Figure 4 shows what its scarce buffering costs.")


if __name__ == "__main__":
    main()
