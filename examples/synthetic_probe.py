#!/usr/bin/env python
"""Probe NIs with parametric traffic patterns.

Uses the synthetic traffic generator to stress two NI designs with the
classic evaluation patterns — uniform random, hotspot (everyone piles
onto node 0), a fixed permutation, ring neighbour, and transpose — and
prints execution time plus the buffering tell-tales (bounces,
processor retries).  Hotspot is where the buffering parameters bite:
the fifo NI's receive buffers at the hot node recycle only as fast as
its processor pops, while the coherent NI drains into main memory.

Run:  python examples/synthetic_probe.py
"""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.workloads.synthetic import PATTERNS, SyntheticTraffic


def run(pattern: str, ni_name: str):
    workload = SyntheticTraffic(
        pattern=pattern, payload_bytes=56, messages_per_node=60,
        burst=10, compute_ns=1_000, handler_ns=200,
    )
    result = workload.run(
        params=DEFAULT_PARAMS.replace(flow_control_buffers=2),
        costs=DEFAULT_COSTS, ni_name=ni_name,
    )
    return result


def main() -> None:
    nis = ("cm5", "cni32qm")
    header = f"{'pattern':<12}" + "".join(
        f"{ni + ' us':>12}{ni + ' bounces':>16}" for ni in nis
    )
    print("16 nodes, 60 x 56B messages per node, fcb=2")
    print(header)
    print("-" * len(header))
    for pattern in PATTERNS:
        row = f"{pattern:<12}"
        for ni_name in nis:
            result = run(pattern, ni_name)
            row += f"{result.elapsed_us:>12.1f}{result.bounces:>16d}"
        print(row)
    print()
    print("Notice hotspot: the fifo NI's bounce count explodes and its")
    print("time with it, while the coherent NI sheds the same burst")
    print("into main memory.  Permutation (pairwise streams) is the")
    print("gentlest pattern for everyone.")


if __name__ == "__main__":
    main()
