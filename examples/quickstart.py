#!/usr/bin/env python
"""Quickstart: measure one NI's round-trip latency and peek inside.

Builds a two-node machine with the paper's best NI (CNI_32Qm, the
coherent network interface with a cache), runs the round-trip
microbenchmark, and prints what the simulation observed — latency,
processor-state breakdown, and the bus/NI counters that explain it.

Run:  python examples/quickstart.py
"""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.workloads.micro import PingPong


def main() -> None:
    payload = 64
    machine = Machine(DEFAULT_PARAMS, DEFAULT_COSTS, "cni32qm", num_nodes=2)
    workload = PingPong(payload_bytes=payload, rounds=200)
    result = workload.run(machine=machine)

    print(f"NI:                 {machine.node(0).ni.paper_name} "
          f"({machine.node(0).ni.description})")
    print(f"payload:            {payload} bytes "
          f"(+{DEFAULT_PARAMS.header_bytes}B header)")
    print(f"round-trip latency: {result.extras['round_trip_us']:.3f} us")
    print()

    print("where the requester's time went:")
    for state, share in sorted(result.breakdown().items()):
        print(f"  {state:<14} {share * 100:5.1f}%")
    print()

    node = machine.node(1)
    print("receive path, as the coherence machinery saw it:")
    print(f"  messages deposited by the NI engine: "
          f"{node.ni.counters['messages_deposited']}")
    print(f"  deposits that fit the 32-entry NI cache: "
          f"{node.ni.counters['deposits_cached']}")
    print(f"  blocks the NI cache supplied cache-to-cache: "
          f"{node.bus.counters['flow:ni_cache->cache']}")
    print(f"  blocks fetched from main memory instead: "
          f"{node.bus.counters['flow:memory->cache']}")
    print()
    print("That last pair is the paper's point: in the common case the")
    print("processor gets its messages directly from the NI cache, not")
    print("through DRAM.")


if __name__ == "__main__":
    main()
