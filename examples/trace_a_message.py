#!/usr/bin/env python
"""Follow one message through two different NIs, nanosecond by
nanosecond.

Enables the machine-wide trace, sends a single 64-byte-payload message
on the CM-5-like NI and on CNI_32Qm, and prints each message's life —
the most concrete way to see the data-transfer parameters at work:
where the CM-5 burns its time (33 uncached accesses inside
``send_done``/``extracted``) versus where the CNI does (a short
composition, then NI-managed motion that never shows up as processor
time).

Run:  python examples/trace_a_message.py
"""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS, Machine
from repro.tools import format_timeline
from repro.tools.timeline import sent_message_uids


def trace_one(ni_name: str, payload: int = 64) -> None:
    params = DEFAULT_PARAMS.replace(tracing=True)
    machine = Machine(params, DEFAULT_COSTS, ni_name, num_nodes=2)
    got = []
    machine.node(1).runtime.register_handler(
        "work", lambda rt, msg: got.append(msg)
    )

    def sender(node):
        yield from node.runtime.send(1, "work", payload)

    def receiver(node):
        yield from node.runtime.wait_for(lambda: got)

    machine.sim.process(sender(machine.node(0)))
    done = machine.sim.process(receiver(machine.node(1)))
    machine.sim.run(until=done)

    uid = sent_message_uids(machine, node_id=0)[0]
    print(f"=== {machine.node(0).ni.paper_name} "
          f"({machine.node(0).ni.description}) ===")
    print(format_timeline(machine, uid))
    print()


def main() -> None:
    for ni_name in ("cm5", "cni32qm"):
        trace_one(ni_name)
    print("Compare the two 'send_done' deltas (the processor-side data")
    print("transfer) and the gap between 'wire' and 'extracted' (the")
    print("NI-managed part): the same bytes, moved by different hands.")


if __name__ == "__main__":
    main()
