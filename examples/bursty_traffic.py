#!/usr/bin/env python
"""Buffering under bursty fine-grain traffic (the em3d/spsolve story).

Runs the em3d macrobenchmark — bursts of 20-byte updates that outrun
the receiving processor — on a fifo-based NI and on a coherent NI,
sweeping the number of flow-control buffers.  This is the heart of the
paper's buffering argument (Figures 1, 3a and 4): a fifo NI holds each
incoming message in an NI buffer until the *processor* pops it, so
with few buffers the network bounces messages back to their senders;
a coherent NI drains arrivals into main memory by itself and barely
notices the buffer count.

Run:  python examples/bursty_traffic.py
"""

from repro import DEFAULT_COSTS, DEFAULT_PARAMS
from repro.workloads.registry import create as make_workload

FCB_LEVELS = (1, 2, 8, None)
NIS = ("cm5", "ap3000", "cni32qm")


def main() -> None:
    print("em3d (bursty 20-byte updates), 16 nodes")
    print()
    header = f"{'NI':<12}" + "".join(
        f"fcb={'inf' if f is None else f:>3}   " for f in FCB_LEVELS
    ) + "bounces@1"
    print(header)
    print("-" * len(header))

    for ni_name in NIS:
        cells = []
        bounces_at_1 = 0
        for fcb in FCB_LEVELS:
            params = DEFAULT_PARAMS.replace(flow_control_buffers=fcb)
            result = make_workload("em3d").run(
                params=params, costs=DEFAULT_COSTS, ni_name=ni_name
            )
            cells.append(result.elapsed_us)
            if fcb == 1:
                bounces_at_1 = result.bounces
        base = cells[-1]  # infinite buffering
        row = f"{ni_name:<12}"
        for value in cells:
            row += f"{value / base:>7.2f}x  "
        row += f"{bounces_at_1:>8}"
        print(row)

    print()
    print("Each cell is execution time relative to the same NI with")
    print("infinite flow-control buffering.  The fifo NIs (cm5, ap3000)")
    print("pay heavily at 1-2 buffers — every bounced message costs a")
    print("network round trip plus a retry — while cni32qm's NI-managed")
    print("buffering in main memory makes it nearly flat.")


if __name__ == "__main__":
    main()
