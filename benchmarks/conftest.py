"""Benchmark-harness configuration.

Each benchmark regenerates one of the paper's tables or figures
through ``pytest-benchmark``.  The *wall time* pytest-benchmark
measures is the cost of running the simulation; the scientific output
(the regenerated rows) is printed and attached to
``benchmark.extra_info`` so ``--benchmark-json`` captures it.

By default benchmarks run in *quick* mode (scaled-down workloads /
fewer rounds) so the whole suite finishes in minutes; set
``REPRO_BENCH_FULL=1`` for the full-scale configurations.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def quick() -> bool:
    """Whether to run the scaled-down (quick) configuration."""
    return not full_scale()


def attach(benchmark, result) -> None:
    """Print a regenerated table and attach it to the benchmark JSON."""
    text = result.format()
    print()
    print(text)
    benchmark.extra_info["experiment"] = result.experiment
    benchmark.extra_info["table"] = text
