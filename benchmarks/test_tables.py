"""Benchmarks regenerating Tables 1-5 of the paper.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark's
printed output is the regenerated table; paper values are embedded in
the output for side-by-side comparison (see EXPERIMENTS.md).
"""

from conftest import attach

from repro.experiments import table1, table2, table3, table4, table5


def test_table1_switch_buffering(benchmark, quick):
    result = benchmark.pedantic(
        table1.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    assert len(result.rows) == 5


def test_table2_ni_taxonomy(benchmark, quick):
    result = benchmark.pedantic(
        table2.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    assert len(result.rows) == 7


def test_table3_system_parameters(benchmark, quick):
    result = benchmark.pedantic(
        table3.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    assert result.cell("Main memory access time", "Value") == "120 ns"


def test_table4_message_sizes(benchmark, quick):
    result = benchmark.pedantic(
        table4.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    measured = result.extras["measured"]
    # The headline peaks of Table 4 appear in every workload's mix.
    assert any(size == 20 for size, _ in measured["em3d"])      # updates
    assert any(size == 20 for size, _ in measured["spsolve"])   # edges
    assert any(size == 140 for size, _ in measured["barnes"])   # bodies
    assert any(size == 32 for size, _ in measured["appbt"])     # blocks
    assert any(size >= 3000 for size, _ in measured["moldyn"])  # bulk rows


def test_table5_round_trip_latency(benchmark, quick):
    result = benchmark.pedantic(
        table5.run_latency, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)

    def rt(ni_label, col):
        return float(result.cell(ni_label, col))

    # The paper's headline orderings (Section 6.1.1).
    for col in ("RT 8B (us)", "RT 64B (us)", "RT 256B (us)"):
        # CNI_32Qm offers the best round-trip latency ...
        assert rt("CNI_32Qm", col) == min(
            rt(row[0], col) for row in result.rows
        )
        # ... and CNI_512Q outperforms the StarT-JR-like NI.
        assert rt("CNI_512Q", col) < rt("Start-JR-like NI", col)
    # UDMA loses to CM-5 below the breakeven, wins above it.
    assert rt("Udma-based NI", "RT 8B (us)") > rt("CM-5-like NI", "RT 8B (us)")
    assert rt("Udma-based NI", "RT 256B (us)") < rt("CM-5-like NI", "RT 256B (us)")
    # StarT-JR beats AP3000 at 8B; by 256B the gap has closed to (at
    # worst) a near-tie — the crossover of Section 6.1.1.  (Known
    # deviation, see EXPERIMENTS.md: the paper has AP3000 clearly
    # ahead at 256B; we allow a 2% tie band.)
    assert rt("Start-JR-like NI", "RT 8B (us)") < rt("AP3000-like NI", "RT 8B (us)")
    assert (rt("AP3000-like NI", "RT 256B (us)")
            < rt("Start-JR-like NI", "RT 256B (us)") * 1.02)
    # The relative gap must have moved AP3000's way with size.
    assert (rt("AP3000-like NI", "RT 256B (us)")
            / rt("Start-JR-like NI", "RT 256B (us)")
            < rt("AP3000-like NI", "RT 8B (us)")
            / rt("Start-JR-like NI", "RT 8B (us)"))
    # CM-5 is the worst at 256B.
    assert rt("CM-5-like NI", "RT 256B (us)") == max(
        rt(row[0], "RT 256B (us)") for row in result.rows
    )


def test_table5_bandwidth(benchmark, quick):
    result = benchmark.pedantic(
        table5.run_bandwidth, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)

    def bw(ni_label, col):
        return float(result.cell(ni_label, col))

    big = "BW 4096B (MB/s)"
    # CM-5 has the lowest large-message bandwidth.
    assert bw("CM-5-like NI", big) == min(
        bw(row[0], big) for row in result.rows
    )
    # AP3000 has the highest unthrottled fifo bandwidth and beats the
    # memory-steered StarT-JR-like NI.
    assert bw("AP3000-like NI", big) > bw("Start-JR-like NI", big)
    # Without throttling, CNI_32Qm's receive cache overflows: its
    # bandwidth falls below AP3000's.
    assert bw("CNI_32Qm", big) < bw("AP3000-like NI", big)
    # With throttling it beats every other NI (the paper's 351 MB/s).
    assert bw("CNI_32Qm+Throttle", big) == max(
        bw(row[0], big) for row in result.rows
    )
