"""Benchmarks for the design-choice ablations (see
repro.experiments.ablations for what each one isolates)."""

from conftest import attach

from repro.experiments import ablations


def test_ablation_cni_optimizations(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_cni_optimizations, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    # Disabling lazy pointer + valid bit + sense reverse must cost
    # latency at every size (extra pointer-block ping-ponging).
    for row in result.rows:
        with_opts, without = float(row[1]), float(row[2])
        assert without > with_opts


def test_ablation_cni32qm_improvements(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_cni32qm_improvements, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    # Neither ablated variant may *beat* the full design by more than
    # noise; at least one configuration must show a real cost.
    deltas = [float(row[4].rstrip("%")) for row in result.rows]
    assert min(deltas) < 0.0
    assert all(d < 5.0 for d in deltas)


def test_ablation_throttle_everywhere(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_throttle_everywhere, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    gains = {row[0]: float(row[3].rstrip("%")) for row in result.rows}
    # The paper: throttling significantly helps only CNI_32Qm.
    assert gains["CNI_32Qm"] == max(gains.values())
    assert gains["CNI_32Qm"] > 5.0
    others = [g for ni, g in gains.items() if ni != "CNI_32Qm"]
    assert all(g < gains["CNI_32Qm"] for g in others)


def test_ablation_udma_breakeven(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_udma_breakeven, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    crossover = result.extras["crossover"]
    # Paper: UDMA pays off only above ~96 bytes.
    assert crossover is not None
    assert 64 <= crossover <= 128


def test_ablation_memory_banking(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_memory_banking, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    # Pipelined memory hides the gap; banking recovers CNI_512Q's
    # Table 5 bandwidth advantage over the memory-steered StarT-JR.
    pipelined = float(result.rows[0][3].rstrip("%"))
    banked = float(result.rows[1][3].rstrip("%"))
    assert abs(pipelined) < 5.0
    assert banked > 10.0


def test_ablation_coherent_fcb_insensitivity(benchmark, quick):
    result = benchmark.pedantic(
        ablations.run_coherent_fcb_insensitivity, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    # "Largely insensitive": even on the buffering-bound workloads,
    # CNI_32Qm loses little at fcb=1 (contrast Figure 3a's fifo NIs).
    for row in result.rows:
        slowdown = float(row[3].rstrip("%"))
        assert slowdown < 15.0
