"""Benchmarks for extension experiments beyond the paper's evaluation:
LogP decomposition, network-contention sensitivity, multiprogramming
buffer pressure, and (in test_ablations) DRAM banking."""

from conftest import attach

from repro.experiments import (
    cni_family,
    contention,
    costmodel_check,
    logp,
    multiprogramming,
    stability,
)
from repro.experiments.ablations import run_coherence_protocol


def test_logp_decomposition(benchmark, quick):
    result = benchmark.pedantic(
        logp.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    samples = result.extras["samples"]

    # Section 6.1's occupancy claim: processor-managed NIs have much
    # higher per-message processor overhead than NI-managed ones.
    processor_managed = ("cm5", "ap3000")
    ni_managed = ("startjr", "cni512q", "cni32qm")
    worst_ni_managed = max(
        samples[n].total_overhead_ns for n in ni_managed
    )
    for name in processor_managed:
        assert samples[name].total_overhead_ns > worst_ni_managed, name

    # And the flip side: the NI-managed designs carry their transfer
    # in L — their residual latency exceeds the processor-managed
    # designs' bare network latency.
    for name in ni_managed:
        assert samples[name].latency_ns > samples["cm5"].latency_ns

    # The model is self-consistent: delivery ~= o_send + L + o_recv.
    for name, sample in samples.items():
        reconstructed = (
            sample.o_send_ns + sample.latency_ns + sample.o_recv_ns
        )
        assert abs(reconstructed - sample.delivery_ns) < 1.0, name


def test_contention_sensitivity(benchmark, quick):
    result = benchmark.pedantic(
        contention.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    times = result.extras["times"]
    # Contention costs something somewhere ...
    slowdowns = [
        v["mesh"] / v[None] for v in times.values()
    ]
    assert max(slowdowns) > 1.02
    # ... but the paper's extrapolation argument holds: the NI ranking
    # survives the move from the abstract network to a contended mesh.
    assert result.extras["ordering_preserved"]


def test_cni_family_sweep(benchmark, quick):
    result = benchmark.pedantic(
        cni_family.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    series = result.extras["series"]
    sizes = sorted(series)
    # Latency is flat in the cache size (one message always fits) ...
    rts = [series[i]["rt_us"] for i in sizes]
    assert max(rts) / min(rts) < 1.05
    # ... streaming bandwidth grows with it ...
    assert series[sizes[-1]]["bw_mb_s"] > series[sizes[0]]["bw_mb_s"]
    # ... because the bypass share falls as the cache covers the
    # in-flight window.
    assert (series[sizes[-1]]["bypass_share"]
            < series[sizes[0]]["bypass_share"])


def test_coherence_protocol_ablation(benchmark, quick):
    result = benchmark.pedantic(
        run_coherence_protocol, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    costs = {row[0]: float(row[3].rstrip("%")) for row in result.rows}
    # Losing the Owned state hurts the coherent NIs substantially and
    # the CM-5-like NI not at all.
    assert costs["CNI_32Qm"] > 10.0
    assert costs["CNI_512Q"] > 10.0
    assert abs(costs["CM-5-like NI"]) < 1.0


def test_costmodel_validation(benchmark, quick):
    result = benchmark.pedantic(
        costmodel_check.run, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    # The closed forms and the simulator must agree to within a couple
    # of percent (uncontended, spaced messages: they agree exactly).
    assert result.extras["worst_error"] < 0.02


def test_seed_stability(benchmark, quick):
    result = benchmark.pedantic(
        stability.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    # The Figure 3b headline must not hinge on a lucky seed: CNI_32Qm
    # beats the AP3000-like NI for every seeded workload structure.
    for workload, values in result.extras["ratios"].items():
        assert max(values) < 1.0, (workload, values)


def test_multiprogramming_pressure(benchmark, quick):
    result = benchmark.pedantic(
        multiprogramming.run, kwargs={"quick": quick},
        rounds=1, iterations=1,
    )
    attach(benchmark, result)
    ratios = result.extras["ratios"]
    for workload in ("em3d", "spsolve"):
        # Partitioning the register NI's buffers across more processes
        # monotonically erodes it relative to CNI_32Qm ...
        series = [ratios[(workload, p)] for p in (1, 2, 4, 8)]
        assert series[-1] > series[0]
        # ... and at 8 processes (2 buffers each) it has clearly lost.
        assert series[-1] > 1.0
