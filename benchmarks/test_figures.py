"""Benchmarks regenerating Figures 1, 3a, 3b and 4 of the paper.

The assertions encode the paper's qualitative claims — who wins, by
roughly what factor, where the crossovers fall — which is what
"reproduced" means for a simulation whose absolute timings come from a
different software stack (see DESIGN.md).
"""

from conftest import attach

from repro.experiments import figure1, figure3, figure4

#: The two applications the paper singles out as buffering-bound.
BUFFERING_BOUND = ("em3d", "spsolve")


def test_figure1_breakdown(benchmark, quick):
    result = benchmark.pedantic(
        figure1.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    results = result.extras["results"]
    # Data transfer and buffering each account for a substantial share
    # of execution time for at least one application (paper: up to
    # 42% and 58% respectively).
    assert max(r["data_transfer"] for r in results.values()) > 0.25
    assert max(r["buffering"] for r in results.values()) > 0.25
    # The buffering-bound applications are the buffering-heavy ones.
    top_buffering = max(results, key=lambda w: results[w]["buffering"])
    assert top_buffering in BUFFERING_BOUND


def test_figure3a_fifo_nis(benchmark, quick):
    result = benchmark.pedantic(
        figure3.run_figure3a, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    matrix = result.extras["matrix"]
    workloads = sorted({k[0] for k in matrix})

    for w in workloads:
        # Flow-control buffering matters: fcb=1 is slower than fcb=2,
        # for every fifo NI and every application.
        for ni in ("cm5", "udma", "ap3000"):
            assert matrix[(w, ni, 1)] > matrix[(w, ni, 2)]
            # And infinite buffering is at least as fast as fcb=2
            # (small tolerance: bounce-free runs reshuffle second-order
            # overlap effects by a couple of percent).
            assert matrix[(w, ni, None)] <= matrix[(w, ni, 2)] * 1.05
        # At infinite buffering: AP3000 beats UDMA beats (or ties) CM-5.
        assert matrix[(w, "ap3000", None)] < matrix[(w, "udma", None)]
        assert matrix[(w, "udma", None)] <= matrix[(w, "cm5", None)] * 1.02

    # em3d and spsolve keep improving well beyond fcb=2 (paper: 29-40%
    # and 78-101% from 2 buffers to infinite, for the three NIs); the
    # other applications gain much less.
    for w in BUFFERING_BOUND:
        gain = matrix[(w, "cm5", 2)] / matrix[(w, "cm5", None)]
        assert gain > 1.10, f"{w} gained only {gain:.2f}x from fcb=2->inf"
    # ... and they gain more than any other application does.
    other_gains = [
        matrix[(w, "cm5", 2)] / matrix[(w, "cm5", None)]
        for w in workloads if w not in BUFFERING_BOUND
    ]
    bound_gains = [
        matrix[(w, "cm5", 2)] / matrix[(w, "cm5", None)]
        for w in BUFFERING_BOUND
    ]
    assert max(bound_gains) > max(other_gains)


def test_figure3b_coherent_nis(benchmark, quick):
    result = benchmark.pedantic(
        figure3.run_figure3b, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    normalized = result.extras["normalized"]
    workloads = sorted({k[0] for k in normalized})

    # CNI_32Qm is the best (or within a whisker of the best) coherent
    # NI on every application — the paper itself grants one streaming
    # exception where CNI_512Q/AP3000 edge it out slightly.
    for w in workloads:
        best = min(
            normalized[(w, ni)]
            for ni in ("memchannel", "startjr", "cni512q", "cni32qm")
        )
        assert normalized[(w, "cni32qm")] <= best * 1.05
    streaming_exceptions = ("moldyn", "unstructured")
    for w in workloads:
        if w in streaming_exceptions:
            continue
        best = min(
            normalized[(w, ni)]
            for ni in ("memchannel", "startjr", "cni512q", "cni32qm")
        )
        assert normalized[(w, "cni32qm")] <= best * 1.001, w
    # ... beats the AP3000-like NI (the best fifo NI, the 1.0 baseline)
    # on the buffering-bound applications ...
    for w in BUFFERING_BOUND:
        assert normalized[(w, "cni32qm")] < 1.0
    # ... and caching in the CNI helps: CNI_32Qm beats StarT-JR
    # everywhere (paper: by 2-13%).
    for w in workloads:
        assert normalized[(w, "cni32qm")] <= normalized[(w, "startjr")]


def test_figure4_register_mapped_ni(benchmark, quick):
    result = benchmark.pedantic(
        figure4.run, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    attach(benchmark, result)
    normalized = result.extras["normalized"]
    workloads = sorted({k[0] for k in normalized})

    # The paper's corollary: with few flow-control buffers the
    # register-mapped NI loses to CNI_32Qm on the buffering-bound
    # applications (values > 1 mean the register NI is slower).
    assert normalized[("spsolve", 1)] > 1.0
    assert normalized[("em3d", 1)] > 1.0
    # With plentiful buffering the single-cycle NI wins everywhere.
    for w in workloads:
        assert normalized[(w, None)] < 1.0
    # On the other five applications CNI_32Qm stays within ~15% of the
    # register-mapped NI (paper, Section 6.3) at fcb=2.
    others = [w for w in workloads if w not in BUFFERING_BOUND]
    for w in others:
        assert normalized[(w, 2)] > 1.0 / 1.25, (
            f"{w}: CNI_32Qm more than 25% behind the register NI"
        )
